package cluster

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"arlo/internal/dispatch"
	"arlo/internal/obs"
)

// failCluster builds a small cluster with an observer wired, compressed
// enough that failure windows are observable but tests stay fast.
func failCluster(t *testing.T, alloc []int, scale float64) (*Cluster, *obs.Recorder) {
	t.Helper()
	p := testProfile(t, []int{128, 512})
	rec := obs.NewRecorder(len(alloc))
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: alloc,
		Dispatcher:        rsFactory,
		TimeScale:         scale,
		Overhead:          -1,
		Observer:          rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, rec
}

// TestFailInstanceRequeuesToSurvivors kills one of two instances under
// load and checks the conservation invariant: every submission completes
// exactly once or fails with a typed error — the recorder's books balance
// to zero — and the displaced work shows up on the requeue counters.
func TestFailInstanceRequeuesToSurvivors(t *testing.T) {
	c, rec := failCluster(t, []int{0, 2}, 0.05)
	defer c.Close()

	const n = 60
	var (
		wg            sync.WaitGroup
		mu            sync.Mutex
		completed     int
		unserviceable int
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.SubmitCtx(context.Background(), Request{Length: 300})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				completed++
			case errors.Is(err, ErrUnserviceable):
				unserviceable++
			default:
				t.Errorf("unexpected submit error: %v", err)
			}
		}()
	}
	// Let load build on both instances, then crash one permanently.
	time.Sleep(2 * time.Millisecond)
	if _, err := c.FailInstance(1, 0); err != nil {
		t.Fatalf("FailInstance: %v", err)
	}
	wg.Wait()

	if completed+unserviceable != n {
		t.Fatalf("conservation violated: %d completed + %d unserviceable != %d submitted",
			completed, unserviceable, n)
	}
	if got := rec.Submitted() - rec.Completed() - rec.Cancelled() - rec.Rejected(); got != 0 {
		t.Errorf("recorder books unbalanced by %d", got)
	}
	if c.Instances() != 1 {
		t.Errorf("instances = %d after permanent failure, want 1", c.Instances())
	}
}

// TestFailInstanceRecovery crashes an instance with a downtime and checks
// it rejoins through the topology path: the count recovers, the health
// report flips dead -> healthy, and the dead entry carries the old ID.
func TestFailInstanceRecovery(t *testing.T) {
	c, _ := failCluster(t, []int{0, 2}, 1)
	defer c.Close()

	id, err := c.FailInstance(1, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if c.Instances() != 1 {
		t.Fatalf("instances = %d right after failure, want 1", c.Instances())
	}
	sum := Summarize(c.Health())
	if sum.Dead != 1 || sum.Healthy != 1 {
		t.Fatalf("health during downtime = %+v, want 1 dead / 1 healthy", sum)
	}
	var seen bool
	for _, h := range c.Health() {
		if h.ID == id && h.State == obs.Dead {
			seen = true
		}
	}
	if !seen {
		t.Errorf("failed instance %d not reported dead in %+v", id, c.Health())
	}

	deadline := time.Now().Add(2 * time.Second)
	for c.Instances() != 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.Instances() != 2 {
		t.Fatalf("instance did not rejoin: %d instances", c.Instances())
	}
	if sum := Summarize(c.Health()); sum.Dead != 0 || sum.Healthy != 2 {
		t.Errorf("health after recovery = %+v, want 2 healthy", sum)
	}
	// The rejoined instance serves: a submission completes.
	if _, err := c.Submit(300); err != nil {
		t.Errorf("submit after recovery: %v", err)
	}
}

// TestUnserviceableAfterBudget queues work on the only instance and kills
// it for good: every displaced request must terminate with
// ErrUnserviceable (never hang, never silently vanish), and both requeue
// reasons — queued and in-flight — must be represented.
func TestUnserviceableAfterBudget(t *testing.T) {
	c, rec := failCluster(t, []int{0, 1}, 1)
	defer c.Close()

	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := c.SubmitCtx(context.Background(), Request{Length: 400})
			errs <- err
		}()
	}
	// Wait until work is queued on the lone instance, then crash it.
	deadline := time.Now().Add(time.Second)
	for c.Outstanding() < n && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := c.FailInstance(1, 0); err != nil {
		t.Fatal(err)
	}
	var unserviceable, completed int
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			switch {
			case err == nil:
				completed++
			case errors.Is(err, ErrUnserviceable):
				unserviceable++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("request neither completed nor failed: work lost")
		}
	}
	if completed+unserviceable != n {
		t.Fatalf("%d completed + %d unserviceable != %d", completed, unserviceable, n)
	}
	if unserviceable == 0 {
		t.Error("expected at least one unserviceable request after killing the only instance")
	}
	if rec.RejectedFor(obs.RejectUnserviceable) != int64(unserviceable) {
		t.Errorf("unserviceable rejections = %d, want %d",
			rec.RejectedFor(obs.RejectUnserviceable), unserviceable)
	}
	if rec.Requeues() == 0 {
		t.Error("no requeues recorded for displaced work")
	}
	if got := rec.Submitted() - rec.Completed() - rec.Cancelled() - rec.Rejected(); got != 0 {
		t.Errorf("recorder books unbalanced by %d", got)
	}
}

// TestSlowInstanceDegradesAndRestores drives the degraded-mode path:
// SlowInstance marks the victim degraded (visible in Health and the
// metrics exposition), execution still completes, and RestoreInstance
// brings it back to healthy.
func TestSlowInstanceDegradesAndRestores(t *testing.T) {
	c, rec := failCluster(t, []int{0, 2}, 0.05)
	defer c.Close()

	id, err := c.SlowInstance(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(c.Health())
	if sum.Degraded != 1 || sum.Healthy != 1 {
		t.Fatalf("health = %+v, want 1 degraded / 1 healthy", sum)
	}
	if _, err := c.Submit(300); err != nil {
		t.Errorf("submit with degraded instance: %v", err)
	}
	var sb strings.Builder
	if err := rec.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `state="degraded"`) {
		t.Error("metrics exposition missing degraded instance state")
	}
	if !strings.Contains(sb.String(), "arlo_requeues_total{reason=\"queued\"}") {
		t.Error("metrics exposition missing arlo_requeues_total series")
	}
	if err := c.RestoreInstance(id); err != nil {
		t.Fatal(err)
	}
	if sum := Summarize(c.Health()); sum.Degraded != 0 || sum.Healthy != 2 {
		t.Errorf("health after restore = %+v, want 2 healthy", sum)
	}
	if err := c.RestoreInstance(9999); err == nil {
		t.Error("restoring unknown instance should fail")
	}
	if _, err := c.SlowInstance(1, 0); err == nil {
		t.Error("non-positive slow factor should fail")
	}
}

// TestFailInstanceValidation covers the error paths: bad runtime index,
// empty runtime, and failing after Close.
func TestFailInstanceValidation(t *testing.T) {
	c, _ := failCluster(t, []int{0, 1}, 1)
	if _, err := c.FailInstance(7, 0); err == nil {
		t.Error("out-of-range runtime should fail")
	}
	if _, err := c.FailInstance(0, 0); err == nil {
		t.Error("failing an empty runtime should error")
	}
	if _, err := c.SlowInstance(0, 2); err == nil {
		t.Error("slowing an empty runtime should error")
	}
	c.Close()
	if _, err := c.FailInstance(1, 0); !errors.Is(err, ErrClusterClosed) {
		t.Errorf("FailInstance after Close = %v, want ErrClusterClosed", err)
	}
	if _, err := c.SlowInstance(1, 2); !errors.Is(err, ErrClusterClosed) {
		t.Errorf("SlowInstance after Close = %v, want ErrClusterClosed", err)
	}
}

// TestCancelDuringRequeue races context cancellation against the failure
// requeue path: whichever side wins, the submitter returns promptly and
// the job is neither lost nor double-completed.
func TestCancelDuringRequeue(t *testing.T) {
	c, rec := failCluster(t, []int{0, 2}, 1)
	defer c.Close()

	const n = 20
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	outcomes := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.SubmitCtx(ctx, Request{Length: 400})
			outcomes <- err
		}()
	}
	time.Sleep(time.Millisecond)
	if _, err := c.FailInstance(1, 0); err != nil {
		t.Fatal(err)
	}
	cancel()
	wg.Wait()
	close(outcomes)
	for err := range outcomes {
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrUnserviceable) && !errors.Is(err, ErrDeadlineExceeded) &&
			!errors.Is(err, ErrCongested) && !errors.Is(err, dispatch.ErrNoInstances) {
			t.Errorf("unexpected outcome: %v", err)
		}
	}
	if got := rec.Submitted() - rec.Completed() - rec.Cancelled() - rec.Rejected(); got != 0 {
		t.Errorf("recorder books unbalanced by %d", got)
	}
}
