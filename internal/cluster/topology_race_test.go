package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"arlo/internal/dispatch"
	"arlo/internal/obs"
)

// The tests in this file race topology mutations (RemoveInstance,
// Replace) against SubmitCtx calls whose contexts fire mid-flight. The
// dangerous window is a job queued on a worker whose channel is being
// closed for graceful drain while the client's cancellation CAS runs:
// exactly one side must win, the books must balance, and no error
// outside the typed taxonomy may escape. Run under -race.

// raceOutcome classifies one SubmitCtx result for the books check.
func raceOutcome(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		return
	}
	switch {
	case errors.Is(err, ErrDeadlineExceeded),
		errors.Is(err, ErrCongested),
		errors.Is(err, ErrClusterClosed),
		errors.Is(err, dispatch.ErrNoInstances),
		errors.Is(err, dispatch.ErrTooLong):
	default:
		t.Errorf("unexpected error under topology churn: %v", err)
	}
}

// TestRemoveInstanceRacesCancellation churns a runtime's population up
// and down while cancellation-heavy traffic flows, then audits that
// every submission resolved exactly once.
func TestRemoveInstanceRacesCancellation(t *testing.T) {
	p := testProfile(t, []int{128, 512})
	rec := obs.NewRecorder(2)
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{2, 2},
		Dispatcher:        rsFactory,
		TimeScale:         0.02,
		Overhead:          -1,
		Observer:          rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		submitters = 6
		perG       = 50
		churns     = 40
	)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				length := 1 + rng.Intn(512)
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if rng.Intn(2) == 0 {
					// Half the traffic is cancelled at a random point in
					// its queue-or-execute window.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(300))*time.Microsecond)
				}
				_, err := c.SubmitCtx(ctx, Request{Length: length})
				cancel()
				raceOutcome(t, err)
			}
		}(g)
	}
	// The churner keeps the topology in motion: remove from whichever
	// runtime still has an instance, add one back, repeat. Removal uses
	// the graceful-drain path (close of the worker channel), which is
	// exactly what must not collide with a cancellation CAS.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < churns; i++ {
			rt := rng.Intn(2)
			if _, err := c.RemoveInstance(rt); err == nil {
				if _, err := c.AddInstance(rt); err != nil {
					t.Errorf("add back to runtime %d: %v", rt, err)
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	wg.Wait()
	c.Close()

	submitted := rec.Submitted()
	if want := int64(submitters * perG); submitted != want {
		t.Errorf("submitted = %d, want %d", submitted, want)
	}
	if bal := submitted - rec.Completed() - rec.Cancelled() - rec.Rejected(); bal != 0 {
		t.Errorf("books unbalanced by %d: completed=%d cancelled=%d rejected=%d",
			bal, rec.Completed(), rec.Cancelled(), rec.Rejected())
	}
}

// TestReplaceRacesCancellation drives Replace back and forth between the
// two runtimes under the same cancellation-heavy load. Replace holds the
// exclusive topology lock across a remove+add pair, so submissions also
// exercise the lock hand-off; the invariant is identical: exact-once
// resolution and balanced books.
func TestReplaceRacesCancellation(t *testing.T) {
	p := testProfile(t, []int{128, 512})
	rec := obs.NewRecorder(2)
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{2, 2},
		Dispatcher:        rsFactory,
		TimeScale:         0.02,
		Overhead:          -1,
		Observer:          rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		submitters = 6
		perG       = 50
		swaps      = 30
	)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < perG; i++ {
				// Short lengths keep level 0 a candidate, so traffic always
				// contends with the runtime being drained by Replace.
				length := 1 + rng.Intn(128)
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Duration(50+rng.Intn(400))*time.Microsecond)
				_, err := c.SubmitCtx(ctx, Request{Length: length})
				cancel()
				raceOutcome(t, err)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		dir := 0
		for i := 0; i < swaps; i++ {
			if _, err := c.Replace(dir, 1-dir, 0); err == nil {
				dir = 1 - dir
			}
			time.Sleep(300 * time.Microsecond)
		}
	}()
	wg.Wait()

	// Total capacity is conserved across every swap.
	alloc := c.Allocation()
	if alloc[0]+alloc[1] != 4 {
		t.Errorf("allocation = %v, want 4 instances total", alloc)
	}
	c.Close()

	submitted := rec.Submitted()
	if want := int64(submitters * perG); submitted != want {
		t.Errorf("submitted = %d, want %d", submitted, want)
	}
	if bal := submitted - rec.Completed() - rec.Cancelled() - rec.Rejected(); bal != 0 {
		t.Errorf("books unbalanced by %d: completed=%d cancelled=%d rejected=%d",
			bal, rec.Completed(), rec.Cancelled(), rec.Rejected())
	}
}
