package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"arlo/internal/obs"
)

// continuousCluster builds a one-level cluster running the iteration-level
// loop with the given slot count and instance count.
func continuousCluster(t *testing.T, instances, slots int, rec *obs.Recorder) *Cluster {
	t.Helper()
	p := testProfile(t, []int{512})
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{instances},
		Dispatcher:        rsFactory,
		Overhead:          -1,
		MaxBatch:          slots,
		BatchDelay:        -1,
		Continuous:        true,
		MeanOutTokens:     8,
		Observer:          rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestContinuousGenerativeCompletions drives a mixed burst through one
// continuous worker and audits the generative span plumbing: every
// completion carries its token count, a positive TTFT no later than the
// total, and a batch id from its prefill iteration.
func TestContinuousGenerativeCompletions(t *testing.T) {
	rec := obs.NewRecorder(1)
	c := continuousCluster(t, 1, 4, rec)

	const n = 12
	results := make([]Result, n)
	outs := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		outs[i] = 1 + (i % 5)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.SubmitCtx(context.Background(), Request{Length: 100, MaxNewTokens: outs[i]})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	for i, res := range results {
		if res.Span.OutTokens != outs[i] {
			t.Errorf("request %d: out tokens %d, want %d", i, res.Span.OutTokens, outs[i])
		}
		if res.Span.TTFT <= 0 {
			t.Errorf("request %d: TTFT %v, want > 0", i, res.Span.TTFT)
		}
		if res.Span.TTFT > res.Span.Total {
			t.Errorf("request %d: TTFT %v exceeds total %v", i, res.Span.TTFT, res.Span.Total)
		}
		if res.Span.Batch == 0 {
			t.Errorf("request %d: no prefill batch id", i)
		}
		if res.Span.BatchSize < 1 || res.Span.BatchSize > 4 {
			t.Errorf("request %d: batch size %d outside [1, 4]", i, res.Span.BatchSize)
		}
	}
}

// TestContinuousJoinMidFlight pins the headline behavior: a short request
// arriving while a long generation holds the batch joins mid-flight and
// finishes long before the resident sequence — it never waits for the
// long output to run to completion.
func TestContinuousJoinMidFlight(t *testing.T) {
	c := continuousCluster(t, 1, 4, nil)

	longDone := make(chan Result, 1)
	go func() {
		res, err := c.SubmitCtx(context.Background(), Request{Length: 400, MaxNewTokens: 200})
		if err != nil {
			t.Errorf("long submit: %v", err)
		}
		longDone <- res
	}()

	// Let the long request occupy the worker mid-decode, then join.
	time.Sleep(20 * time.Millisecond)
	shortStart := time.Now()
	res, err := c.SubmitCtx(context.Background(), Request{Length: 50, MaxNewTokens: 2})
	if err != nil {
		t.Fatalf("short submit: %v", err)
	}
	shortWall := time.Since(shortStart)

	select {
	case <-longDone:
		t.Fatalf("long request finished before the short one returned (short wall %v)", shortWall)
	default:
	}
	long := <-longDone
	if long.Span.OutTokens != 200 {
		t.Errorf("long out tokens = %d, want 200", long.Span.OutTokens)
	}
	// The short join must share iterations with the resident long request,
	// not queue behind its full run: 2 tokens cost ~2 iterations, far less
	// than the long request's 200.
	if shortWall > long.Latency/4 {
		t.Errorf("short request wall %v not far below long latency %v — no mid-flight join",
			shortWall, long.Latency)
	}
	if res.Span.BatchSize < 2 {
		t.Errorf("short request prefilled alone (batch size %d), expected to share the iteration", res.Span.BatchSize)
	}
}

// TestContinuousMidDecodeCancel cancels a generation mid-decode: the
// submitter gets the context error, the slot frees (audited by a follow-up
// request completing), and the books stay balanced.
func TestContinuousMidDecodeCancel(t *testing.T) {
	rec := obs.NewRecorder(1)
	c := continuousCluster(t, 1, 2, rec)

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.SubmitCtx(ctx, Request{Length: 400, MaxNewTokens: 500})
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // well into the decode
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled mid-decode: got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not release the submitter")
	}

	// The abandoned slot must be swept so new work flows.
	res, err := c.SubmitCtx(context.Background(), Request{Length: 50, MaxNewTokens: 2})
	if err != nil {
		t.Fatalf("post-cancel submit: %v", err)
	}
	if res.Span.OutTokens != 2 {
		t.Errorf("post-cancel out tokens = %d, want 2", res.Span.OutTokens)
	}
}

// TestContinuousCrashDisplacesResidents kills the instance mid-generation:
// resident sequences lose their partial output and re-dispatch to the
// survivor, completing exactly once with full token counts.
func TestContinuousCrashDisplacesResidents(t *testing.T) {
	rec := obs.NewRecorder(1)
	c := continuousCluster(t, 2, 2, rec)

	const n = 6
	results := make([]Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.SubmitCtx(context.Background(), Request{Length: 300, MaxNewTokens: 60})
		}(i)
	}
	time.Sleep(15 * time.Millisecond) // generations under way on both instances
	if _, err := c.FailInstance(0, 0); err != nil {
		t.Fatalf("fail instance: %v", err)
	}
	wg.Wait()

	for i := range results {
		if errs[i] != nil {
			t.Errorf("request %d failed across the crash: %v", i, errs[i])
			continue
		}
		if results[i].Span.OutTokens != 60 {
			t.Errorf("request %d: out tokens %d, want 60 (partial generation leaked)", i, results[i].Span.OutTokens)
		}
	}
}

// TestContinuousServesEncoderRequests pins compatibility: a request with
// no output budget flows through the continuous loop as a prefill-only
// resident, with zero generative span fields.
func TestContinuousServesEncoderRequests(t *testing.T) {
	c := continuousCluster(t, 1, 4, nil)
	res, err := c.SubmitCtx(context.Background(), Request{Length: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Span.OutTokens != 0 {
		t.Errorf("encoder request got %d out tokens", res.Span.OutTokens)
	}
	if res.Span.TTFT != 0 {
		t.Errorf("encoder request got TTFT %v", res.Span.TTFT)
	}
	if res.Latency <= 0 {
		t.Errorf("latency = %v", res.Latency)
	}
}
