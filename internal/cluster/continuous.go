package cluster

import (
	"time"

	"arlo/internal/batcher"
	"arlo/internal/obs"
	"arlo/internal/profiler"
)

// Continuous (iteration-level) batching: instead of forming a batch once
// and running it to completion, the worker re-forms its batch every
// iteration. One iteration prefills the sequences admitted this round and
// advances every resident sequence by one decode token, as a single
// emulated kernel priced by the prefill+decode model
// (Runtime.BatchCostOf + Runtime.DecodeStepCost). A sequence that emits
// its last token leaves at the end of the iteration — its slot is open to
// the next queued request on the very next one — so short outputs never
// wait for long ones, which is where the throughput and TTFT win over the
// run-to-completion loop comes from.
//
// Admission rule: with every slot empty the worker blocks in the batch
// former's windowed Next (the SLO-aware collection window still shapes the
// initial batch); with sequences mid-decode it switches to the
// non-blocking Poll — decode iterations are never delayed to wait for
// followers, the running batch itself is the collection window.

// genSeq is one occupied decode slot.
type genSeq struct {
	j *job
	// remain counts decode iterations still owed after the prefill (the
	// prefill yields the first token).
	remain int
	// ctx is the current context length: prompt plus generated tokens.
	ctx int
	// prefilled marks sequences past their prefill iteration.
	prefilled bool
	// admitted is the wall-clock start of the sequence's prefill iteration.
	admitted time.Time
	// batchID/batchSize snapshot the prefill iteration for span
	// correlation (the iteration a request joined, and how many sequences
	// shared it).
	batchID   int64
	batchSize int
}

// runWorkerContinuous is the iteration-level worker loop.
//
// Lifecycle semantics per sequence, audited by the chaos harness's
// generative mode:
//
//   - join-mid-flight: a request admitted through Poll is promoted
//     pending -> running exactly like a formed batch member; a lost CAS is
//     a cancellation while queued and drops only that request;
//   - mid-decode cancellation: the submitter's running -> abandoned CAS is
//     observed by the per-iteration sweep, which frees the slot instead of
//     decoding dead tokens;
//   - crash: a kill interrupts the in-flight iteration and every resident
//     sequence restarts from scratch through the failover demotion path
//     (partial generations are lost, as on a real GPU), while still-queued
//     work drains through the same requeue path as the other loops.
func (c *Cluster) runWorkerContinuous(w *worker, rt profiler.Runtime) {
	defer c.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	slots := c.batchCapFor(rt)
	// The deadline slack a member must keep at admission: a full-width
	// prefill plus its expected decode residency, in wall time.
	decodeEst := time.Duration(float64(rt.DecodeStepUniform(slots, rt.MaxLength)) * (c.meanOut - 1))
	execEstimate := time.Duration(float64(rt.BatchDrainTime(slots, slots)+decodeEst) * c.scale)
	former := &batcher.Former[*job]{
		Source: w.ch,
		Policy: batcher.Policy{
			MaxSize:  slots,
			MaxDelay: time.Duration(float64(c.batchDelay) * c.scale),
		},
		Deadline: func(j *job) (time.Time, bool) {
			if j.deadline.IsZero() {
				return time.Time{}, false
			}
			return j.deadline.Add(-execEstimate), true
		},
		Interrupt: w.kill,
	}

	var (
		active   []genSeq
		incoming []*job
		newLens  []int // prompt lengths prefilled this iteration
		ctxs     []int // contexts decoded this iteration
		closed   bool
	)

	// requeueActive displaces every resident sequence through the failover
	// path (crash semantics: the partial generation is lost).
	requeueActive := func() {
		for i := range active {
			j := active[i].j
			c.ml.OnComplete(w.inst)
			if j.state.CompareAndSwap(jobRunning, jobPending) {
				c.redispatch(j, obs.RequeueInflight)
			} else {
				jobPool.Put(j)
			}
		}
		active = active[:0]
	}

	for {
		// Admission.
		incoming = incoming[:0]
		if len(active) == 0 {
			if closed {
				return
			}
			var ok bool
			incoming, ok = former.Next(incoming)
			if !ok {
				return
			}
		} else if free := slots - len(active); free > 0 && !closed {
			var open bool
			incoming, open = former.Poll(incoming, free)
			closed = !open
		}

		if w.dead.Load() {
			// Crashed: requeue instead of executing. Queued admissions
			// re-enter dispatch from their queued state, residents from
			// in-flight; the loop keeps draining the channel until it
			// closes.
			for _, j := range incoming {
				c.ml.OnComplete(w.inst)
				if j.state.Load() == jobCancelled {
					jobPool.Put(j)
					continue
				}
				c.redispatch(j, obs.RequeueQueued)
			}
			requeueActive()
			continue
		}

		// Promote admissions into open slots; a lost CAS is a cancellation
		// while queued and drops only that request.
		now := time.Now()
		for _, j := range incoming {
			if !j.state.CompareAndSwap(jobPending, jobRunning) {
				c.ml.OnComplete(w.inst)
				jobPool.Put(j)
				continue
			}
			out := j.maxNew
			if out < 1 {
				out = 1 // encoder request: prefill-only residency
			}
			active = append(active, genSeq{j: j, remain: out - 1, ctx: j.length, admitted: now})
		}

		// Sweep mid-decode cancellations: an abandoned sequence frees its
		// slot now rather than decoding tokens nobody will read.
		for i := 0; i < len(active); {
			if active[i].j.state.Load() == jobAbandoned {
				c.ml.OnComplete(w.inst)
				jobPool.Put(active[i].j)
				active[i] = active[len(active)-1]
				active = active[:len(active)-1]
				continue
			}
			i++
		}
		if len(active) == 0 {
			continue
		}

		// One iteration: prefill the newcomers, decode everything resident.
		newLens, ctxs = newLens[:0], ctxs[:0]
		for i := range active {
			if active[i].prefilled {
				ctxs = append(ctxs, active[i].ctx)
			} else {
				newLens = append(newLens, active[i].ctx)
			}
		}
		modeled := rt.BatchCostOf(newLens) + rt.DecodeStepCost(ctxs)
		batchID := c.batchSeq.Add(1)
		c.obsRec.Load().RecordBatch(rt.Index, len(active))
		iterStart := time.Now()
		cost := time.Duration(float64(modeled) * c.scale * w.slowFactor())
		if c.emulate(w, timer, iterStart, cost) {
			// Killed mid-iteration: every resident computation is lost.
			requeueActive()
			continue
		}
		iterEnd := time.Now()

		// Advance: newcomers took their first token from the prefill,
		// residents one more; finished sequences exit immediately.
		for i := 0; i < len(active); {
			s := &active[i]
			if s.prefilled {
				s.ctx++
				s.remain--
			} else {
				s.prefilled = true
				s.batchID = batchID
				s.batchSize = len(active)
				j := s.j
				j.wait = time.Duration(float64(s.admitted.Sub(j.started)) / c.scale)
				if j.maxNew >= 1 {
					j.ttft = time.Duration(float64(iterEnd.Sub(j.started)) / c.scale)
				}
			}
			if s.remain > 0 {
				i++
				continue
			}
			j := s.j
			c.ml.OnComplete(w.inst)
			j.exec = time.Duration(float64(iterEnd.Sub(s.admitted)) / c.scale)
			j.batchID = s.batchID
			j.batchSize = s.batchSize
			if j.maxNew >= 1 {
				j.outTokens = j.maxNew
			}
			lat := time.Duration(float64(iterEnd.Sub(j.started)) / c.scale)
			if j.state.CompareAndSwap(jobRunning, jobDone) {
				j.done <- lat + c.overhead
			} else {
				jobPool.Put(j)
			}
			active[i] = active[len(active)-1]
			active = active[:len(active)-1]
		}
	}
}
