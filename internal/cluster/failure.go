// Fault injection for the live cluster, mirroring the simulator's failure
// model (sim.Failure) on the wall clock: a crash kills the most loaded
// instance of a runtime, its queued and in-flight work re-enters through
// the normal dispatch path (the failover demotion rule), and the instance
// rejoins after its downtime through the same topology path as a
// scale-out. The chaos harness (internal/chaos) drives these entry points
// under load to prove the conservation invariants.

package cluster

import (
	"fmt"
	"math"
	"sort"
	"time"

	"arlo/internal/failover"
	"arlo/internal/obs"
	"arlo/internal/queue"
)

// FailInstance crashes one instance of runtime rtIdx (any runtime when
// rtIdx is -1), selecting the victim by the shared failover rule: the most
// loaded instance, ties toward the smaller ID — the same choice the
// simulator's failure model makes. The victim detaches from the queue
// atomically with respect to in-flight submissions (they hold the
// topology lock shared), so no new work lands on it after FailInstance
// returns. Its in-flight emulated kernel is interrupted (the computation
// is lost, as on a real GPU) and its queued jobs drain asynchronously;
// both re-enter through the active dispatch policy against the requeue
// budget.
//
// A positive downtime schedules the instance's rejoin after
// downtime × TimeScale (wall clock) through the AddInstance path, under a
// fresh ID; downtime <= 0 leaves it down forever. The returned ID is the
// crashed instance's.
func (c *Cluster) FailInstance(rtIdx int, downtime time.Duration) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClusterClosed
	}
	if rtIdx < -1 || rtIdx >= len(c.cfg.Profile.Runtimes) {
		return 0, fmt.Errorf("cluster: runtime %d outside [-1, %d)", rtIdx, len(c.cfg.Profile.Runtimes))
	}
	victim := failover.PickVictim(c.lockedInstances(), rtIdx)
	if victim == nil {
		return 0, fmt.Errorf("cluster: no instance to fail for runtime %d", rtIdx)
	}
	w := c.workers[victim.ID]
	c.ml.Remove(victim.ID)
	delete(c.workers, victim.ID)
	c.failed[victim.ID] = &failedInstance{runtime: victim.Runtime, capacity: victim.MaxCapacity}
	// Order matters: dead first (the drain loop and the spin loop read it),
	// then the kill broadcast (interrupts the sleeping kernel), then the
	// channel close (lets the drain loop terminate). All under the
	// exclusive lock, so no submission can be mid-send on w.ch.
	w.dead.Store(true)
	close(w.kill)
	close(w.ch)
	if downtime > 0 {
		wall := time.Duration(float64(downtime) * c.scale)
		id, rt := victim.ID, victim.Runtime
		time.AfterFunc(wall, func() { c.recoverInstance(id, rt) })
	}
	return victim.ID, nil
}

// recoverInstance brings a crashed instance's replacement up once its
// downtime elapses. The rejoin goes through the normal addWorker topology
// path under a fresh ID — exactly how the simulator re-adds a recovered
// instance, and how a real orchestrator would schedule a replacement pod.
func (c *Cluster) recoverInstance(failedID, rtIdx int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if _, ok := c.failed[failedID]; !ok {
		// Already recovered (or cleared) by another path.
		return
	}
	delete(c.failed, failedID)
	// addWorker can only fail on a duplicate queue ID, impossible for a
	// fresh nextID; ignore defensively rather than crash the timer
	// goroutine.
	_ = c.addWorker(rtIdx)
}

// SlowInstance puts one instance of runtime rtIdx (any runtime when rtIdx
// is -1) into degraded mode: its emulated execution latency is multiplied
// by factor until restored. The victim is chosen by the same most-loaded
// rule as FailInstance. A factor of 1 restores full speed; factors below 1
// (faster) are allowed for testing. The instance keeps serving — slowness
// shows up as queue growth that Algorithm 1's congestion thresholds route
// around, not as displaced work. Returns the degraded instance's ID.
func (c *Cluster) SlowInstance(rtIdx int, factor float64) (int, error) {
	if factor <= 0 {
		return 0, fmt.Errorf("cluster: slow factor %g must be positive", factor)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClusterClosed
	}
	if rtIdx < -1 || rtIdx >= len(c.cfg.Profile.Runtimes) {
		return 0, fmt.Errorf("cluster: runtime %d outside [-1, %d)", rtIdx, len(c.cfg.Profile.Runtimes))
	}
	victim := failover.PickVictim(c.lockedInstances(), rtIdx)
	if victim == nil {
		return 0, fmt.Errorf("cluster: no instance to slow for runtime %d", rtIdx)
	}
	c.workers[victim.ID].slow.Store(math.Float64bits(factor))
	return victim.ID, nil
}

// RestoreInstance returns a degraded instance to full speed. It is a
// no-op with an error for unknown (including crashed) IDs.
func (c *Cluster) RestoreInstance(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[id]
	if w == nil {
		return fmt.Errorf("cluster: no instance %d to restore", id)
	}
	w.slow.Store(math.Float64bits(1))
	return nil
}

// lockedInstances snapshots the deployed instances; caller holds c.mu.
func (c *Cluster) lockedInstances() []*queue.Instance {
	insts := make([]*queue.Instance, 0, len(c.workers))
	for _, w := range c.workers {
		insts = append(insts, w.inst)
	}
	return insts
}

// InstanceHealth is one instance's serving state as reported by Health.
type InstanceHealth struct {
	ID      int
	Runtime int
	State   obs.Health
	// SlowFactor is the degraded-mode execution multiplier (1 when
	// healthy, 0 when dead).
	SlowFactor float64
}

// Health reports every instance's serving state, sorted by ID. Crashed
// instances appear as Dead until their downtime elapses and their
// replacement joins under a fresh ID.
func (c *Cluster) Health() []InstanceHealth {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]InstanceHealth, 0, len(c.workers)+len(c.failed))
	for id, w := range c.workers {
		out = append(out, InstanceHealth{
			ID:         id,
			Runtime:    w.inst.Runtime,
			State:      w.health(),
			SlowFactor: w.slowFactor(),
		})
	}
	for id, f := range c.failed {
		out = append(out, InstanceHealth{ID: id, Runtime: f.runtime, State: obs.Dead})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// HealthSummary aggregates Health into per-state counts, the shape the
// /healthz endpoint serves.
type HealthSummary struct {
	Healthy  int `json:"healthy"`
	Degraded int `json:"degraded"`
	Dead     int `json:"dead"`
}

// Summarize folds a health report into per-state counts.
func Summarize(hs []InstanceHealth) HealthSummary {
	var s HealthSummary
	for _, h := range hs {
		switch h.State {
		case obs.Healthy:
			s.Healthy++
		case obs.Degraded:
			s.Degraded++
		default:
			s.Dead++
		}
	}
	return s
}
