package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"arlo/internal/obs"
	"arlo/internal/sim"
	"arlo/internal/trace"
)

// TestBatchedClusterCoalesces drives a burst through one worker with greedy
// batch formation and checks the span plumbing: every completion carries a
// batch id, sizes respect the cap, and the recorder's batch books agree
// with the completions.
func TestBatchedClusterCoalesces(t *testing.T) {
	p := testProfile(t, []int{512})
	rec := obs.NewRecorder(1)
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1},
		Dispatcher:        rsFactory,
		Overhead:          -1,
		MaxBatch:          4,
		BatchDelay:        -1, // greedy: batches fill straight off the queue
		Observer:          rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 12
	results := make([]Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.SubmitCtx(context.Background(), Request{Length: 100})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	for i, res := range results {
		if res.Span.Batch == 0 {
			t.Errorf("request %d: no batch id on a batched cluster", i)
		}
		if res.Span.BatchSize < 1 || res.Span.BatchSize > 4 {
			t.Errorf("request %d: batch size %d outside [1, 4]", i, res.Span.BatchSize)
		}
		if res.Span.FormWait < 0 {
			t.Errorf("request %d: negative formation wait %v", i, res.Span.FormWait)
		}
	}
	if got := rec.BatchedRequests(); got != n {
		t.Errorf("recorder batched requests = %d, want %d", got, n)
	}
	// 12 requests through one worker cannot have run as 12 singleton
	// batches: everything queued behind the first execution coalesces.
	if got := rec.Batches(); got >= n {
		t.Errorf("recorder batches = %d, want < %d (no coalescing happened)", got, n)
	}
}

// TestSequentialSpansCarryNoBatchFields pins the batching-off contract: the
// sequential worker path must leave the batch span fields zero.
func TestSequentialSpansCarryNoBatchFields(t *testing.T) {
	p := testProfile(t, []int{512})
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1},
		Dispatcher:        rsFactory,
		Overhead:          -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.SubmitCtx(context.Background(), Request{Length: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Span.Batch != 0 || res.Span.BatchSize != 0 || res.Span.FormWait != 0 {
		t.Errorf("sequential span has batch fields set: batch=%d size=%d wait=%v",
			res.Span.Batch, res.Span.BatchSize, res.Span.FormWait)
	}
}

// TestBatchedDrainsBurstFaster is the live-cluster version of the
// simulator's throughput test: draining the same burst through the same
// single worker must finish measurably sooner with batching on, because
// the batch cost is sub-linear in the batch size.
func TestBatchedDrainsBurstFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock throughput comparison")
	}
	p := testProfile(t, []int{512})
	const n = 48
	drain := func(maxBatch int) time.Duration {
		c, err := New(Config{
			Profile:           p,
			InitialAllocation: []int{1},
			Dispatcher:        rsFactory,
			Overhead:          -1,
			TimeScale:         0.5,
			MaxBatch:          maxBatch,
			BatchDelay:        -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := c.Submit(100); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
		return time.Since(start)
	}
	seq := drain(1)
	bat := drain(8)
	// Batch 8 at the default cost model runs ~1.8x the sequential
	// throughput; require a conservative 1.25x so the 1-CPU CI container's
	// scheduling noise cannot flake the assertion.
	if float64(bat) > 0.8*float64(seq) {
		t.Errorf("batched drain %v not faster than sequential %v (want < 80%%)", bat, seq)
	}
}

// TestSimLiveBatchParity replays one trace through the discrete-event
// simulator and the live cluster with the same profile, allocation and
// batch cap. Greedy live formation (BatchDelay < 0) matches the
// simulator's event-driven batching — an idle instance takes whatever is
// queued, up to the cap — so completion counts must agree exactly and the
// mean modeled latencies must land within a factor of two (the live side
// adds real goroutine scheduling under time compression).
func TestSimLiveBatchParity(t *testing.T) {
	p := testProfile(t, []int{512})
	// 250 req/s against two instances (~410 req/s sequential capacity)
	// keeps both systems in the moderately-loaded regime where queueing is
	// real but bounded. TimeScale 0.2 keeps the worker's 200us spin guard
	// small relative to the compressed execution times, so the 1-CPU CI
	// container's spin serialization cannot inflate the live means.
	tr, err := trace.Generate(trace.Stable(7, 250, 2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	alloc := []int{2}

	simRes, err := sim.Run(sim.Config{
		Profile:           p,
		Trace:             tr,
		InitialAllocation: alloc,
		Dispatcher:        rsFactory,
		Overhead:          -1,
		MaxBatch:          4,
	})
	if err != nil {
		t.Fatal(err)
	}

	c, err := New(Config{
		Profile:           p,
		InitialAllocation: alloc,
		Dispatcher:        rsFactory,
		Overhead:          -1,
		TimeScale:         0.2,
		MaxBatch:          4,
		BatchDelay:        -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	liveRes, err := c.Replay(tr)
	c.Close()
	if err != nil {
		t.Fatal(err)
	}

	if simRes.Rejected != 0 {
		t.Fatalf("simulator rejected %d requests", simRes.Rejected)
	}
	if liveRes.Rejected != 0 {
		t.Fatalf("live cluster rejected %d requests", liveRes.Rejected)
	}
	if simRes.Completed != len(tr.Requests) || liveRes.Latency.Count() != len(tr.Requests) {
		t.Fatalf("completions diverge: sim %d, live %d, trace %d",
			simRes.Completed, liveRes.Latency.Count(), len(tr.Requests))
	}
	simMean := simRes.Latency.Mean()
	liveMean := liveRes.Latency.Mean()
	ratio := float64(liveMean) / float64(simMean)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("mean latency parity broken: sim %v, live %v (ratio %.2f, want within [0.5, 2.0])",
			simMean, liveMean, ratio)
	}
}

// TestBatchFormationCancellationRace is the -race hammer for the batching
// path: half the submitters carry deadlines tight enough to expire while
// their request is queued or inside the collection window, racing the
// per-member pending->running CAS against SubmitCtx's cancellation. The
// books must balance regardless of who wins each race.
func TestBatchFormationCancellationRace(t *testing.T) {
	p := testProfile(t, []int{512})
	rec := obs.NewRecorder(1)
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{2},
		Dispatcher:        rsFactory,
		Overhead:          -1,
		MaxBatch:          8,
		// Default (SLO-aware) window: formation waits, so cancellation has
		// a real window to race.
		BatchDelay: 0,
		Observer:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 200
	rng := rand.New(rand.NewSource(11))
	timeouts := make([]time.Duration, n)
	lengths := make([]int, n)
	for i := range timeouts {
		if i%2 == 1 {
			timeouts[i] = time.Duration(50+rng.Intn(2000)) * time.Microsecond
		}
		lengths[i] = 1 + rng.Intn(500)
	}
	var (
		wg                   sync.WaitGroup
		mu                   sync.Mutex
		completed, cancelled int
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if timeouts[i] > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, timeouts[i])
				defer cancel()
			}
			_, err := c.SubmitCtx(ctx, Request{Length: lengths[i]})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				completed++
			case errors.Is(err, ErrDeadlineExceeded):
				cancelled++
			default:
				t.Errorf("request %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	if completed+cancelled != n {
		t.Errorf("outcomes %d+%d != %d submitted", completed, cancelled, n)
	}
	// Deadline-free submitters must all complete; the 50us..2ms deadlines
	// sit well under one modeled execution, so some cancellations must win.
	if completed < n/2 {
		t.Errorf("completed %d < %d deadline-free submissions", completed, n/2)
	}
	if cancelled == 0 {
		t.Error("no cancellation won the race against batch formation")
	}
	if got, want := rec.Completed(), int64(completed); got != want {
		t.Errorf("recorder completed %d, harness saw %d (double or lost delivery)", got, want)
	}
	if got, want := rec.Cancelled(), int64(cancelled); got != want {
		t.Errorf("recorder cancelled %d, harness saw %d", got, want)
	}
	if bal := rec.Submitted() - rec.Completed() - rec.Cancelled() - rec.Rejected(); bal != 0 {
		t.Errorf("recorder books unbalanced by %d", bal)
	}
}
