// Ingress is the batched submission path: sharded MPSC rings amortize the
// per-request handoff (topology read lock, queue stripe locks, scheduler
// wakeups) across groups of requests while preserving SubmitCtx semantics
// per member — cancellation-while-queued, typed errors, pooled jobs, and
// spans that now also carry the ingress_wait stage.
//
//	producer goroutines        ring consumers           workers
//	SubmitCtx ──enqueue──► [shard 0..P-1] ──drain G──► submitBatch ──► w.ch
//	   │                                                   │
//	   └────────────── await(j.done) ◄─────────────────────┘
//
// submitBatch is where the amortization happens: one topology RLock per
// group, and (with a GroupDispatcher policy) the queue stripe locks are
// taken once per touched level via Reheap instead of once per request.
package cluster

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"arlo/internal/dispatch"
	"arlo/internal/obs"
	"arlo/internal/queue"
	"arlo/internal/ring"
)

// BatchResult is one member's outcome of SubmitBatch: exactly one of
// Result (a completion) or Err (a typed rejection, cancellation or
// failure) is meaningful, mirroring SubmitCtx's return pair.
type BatchResult struct {
	Result Result
	Err    error
}

// SubmitBatch dispatches a group of requests in one pass and blocks until
// every member completes or ctx fires. The group shares one topology
// read-lock acquisition and — when the active policy implements
// dispatch.GroupDispatcher — one queue stripe lock per touched runtime
// level, instead of one of each per request. Per-member semantics are
// identical to SubmitCtx: each member resolves independently to a
// completion or a typed error, the ctx deadline and cancellation are
// honored while queued, and a member whose deadline is already spent when
// the group is dispatched is rejected with ErrDeadlineExceeded before
// touching the queue.
func (c *Cluster) SubmitBatch(ctx context.Context, reqs []Request) []BatchResult {
	out := make([]BatchResult, len(reqs))
	rec := c.obsRec.Load()
	if err := ctx.Err(); err != nil {
		for i := range out {
			rec.RecordSubmit()
			rec.RecordCancel()
			out[i].Err = cancelErr(err)
		}
		return out
	}
	deadline, hasDeadline := ctx.Deadline()
	jobs := make([]*job, len(reqs))
	for i, r := range reqs {
		rec.RecordSubmit()
		t, aerr := c.admitTenant(r.Tenant, r.Length+r.MaxNewTokens)
		if aerr != nil {
			// Rejected at the door: the member resolves without ever leasing
			// a job; its slot stays nil through the group dispatch.
			rec.RecordReject(obs.RejectRateLimited)
			out[i].Err = aerr
			continue
		}
		j := newJob(r.Length)
		j.tokenize = r.Tokenize
		if r.MaxNewTokens > 0 {
			j.maxNew = r.MaxNewTokens
		}
		if hasDeadline {
			j.deadline = deadline
		}
		c.applyTenant(j, t)
		jobs[i] = j
	}
	c.submitBatch(jobs)
	for i, j := range jobs {
		if j == nil {
			continue // admission-rejected member, already resolved
		}
		out[i].Result, out[i].Err = c.await(ctx, j, rec)
	}
	return out
}

// submitBatch routes one drained group of jobs — the amortized counterpart
// of route(): the topology lock is taken shared once for the whole group,
// and with a GroupDispatcher policy each touched level's stripe lock is
// taken once (the deferred Reheap) instead of once per member. Every job
// is resolved exactly once: handed to a worker, discarded if its
// submitter already cancelled, or failed with a typed error through its
// done channel. Callers must have recorded the submissions already.
func (c *Cluster) submitBatch(jobs []*job) {
	rec := c.obsRec.Load()
	if c.fairQ != nil {
		// Multi-tenant mode: the group takes its fair turns through the
		// pump instead of dispatching inline.
		c.submitBatchFair(jobs)
		return
	}
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		for _, j := range jobs {
			if j == nil {
				continue
			}
			c.failJob(j, ErrClusterClosed)
		}
		return
	}
	now := time.Now()
	stale := c.dispStale
	var touched uint64 // bitmask of levels dispatched via DispatchStale
	for _, j := range jobs {
		if j == nil {
			continue // admission-rejected member of a SubmitBatch group
		}
		if j.state.Load() == jobCancelled {
			// The submitter's context fired while the job sat in the ring;
			// it already returned, so the drain owns (and discards) the job.
			jobPool.Put(j)
			continue
		}
		if !j.deadline.IsZero() && !now.Before(j.deadline) {
			// The member's deadline was spent while it waited for its
			// group: reject before touching the queue, mirroring the batch
			// former's per-member CAS rule.
			c.failJob(j, cancelErr(context.DeadlineExceeded))
			continue
		}
		j.ingressWait = now.Sub(j.started)
		t0 := time.Now()
		var (
			inst *queue.Instance
			dec  dispatch.Decision
			err  error
		)
		if stale != nil {
			inst, dec, err = stale.DispatchStale(j.length)
		} else {
			inst, dec, err = c.dispCtx.DispatchCtx(context.Background(), j.length)
		}
		if err != nil {
			c.failJob(j, err)
			continue
		}
		j.dispatch = time.Since(t0)
		j.dec = dec
		j.instID = inst.ID
		if dec.Level > dec.IdealLevel {
			rec.RecordDemotion(dec.IdealLevel, dec.Level)
		}
		if stale != nil && dec.Level < 64 {
			touched |= 1 << uint(dec.Level)
		} else if stale != nil {
			c.ml.Reheap(dec.Level) // beyond the bitmask's reach; repair now
		}
		w := c.workers[inst.ID]
		if w == nil {
			c.ml.OnComplete(inst)
			c.failJob(j, fmt.Errorf("%w: instance %d no longer deployed", ErrCongested, inst.ID))
			continue
		}
		select {
		case w.ch <- j:
		default:
			c.ml.OnComplete(w.inst)
			c.failJob(j, fmt.Errorf("%w: worker %d queue overflow", ErrCongested, inst.ID))
		}
	}
	// The deferred stripe-lock half of the bargain: one Reheap per level
	// the group dispatched into restores heap order and the front caches.
	for touched != 0 {
		k := bits.TrailingZeros64(touched)
		touched &^= 1 << uint(k)
		c.ml.Reheap(k)
	}
	c.mu.RUnlock()
}

// IngressConfig tunes an Ingress. The zero value gives GOMAXPROCS shards
// of ring.DefaultShardCapacity slots drained in groups of DefaultMaxGroup.
type IngressConfig struct {
	// Shards is the submit-ring shard count (<= 0: GOMAXPROCS).
	Shards int
	// ShardCapacity is the per-shard slot count, rounded up to a power of
	// two (<= 0: ring.DefaultShardCapacity). A full ring rejects with
	// ErrCongested — explicit backpressure instead of queueing latency.
	ShardCapacity int
	// MaxGroup caps how many requests one drain hands to SubmitBatch
	// (<= 0: DefaultMaxGroup). Larger groups amortize more but let the
	// head of the group wait longer behind the tail's dispatches.
	MaxGroup int
}

// DefaultMaxGroup is the drain group cap used when IngressConfig leaves
// MaxGroup unset.
const DefaultMaxGroup = 64

// Ingress is the ring-fed submission front end of a cluster: producers
// enqueue lock-free into per-shard MPSC rings, and one consumer goroutine
// per shard drains groups into submitBatch. SubmitCtx is a drop-in
// replacement for Cluster.SubmitCtx with identical per-request semantics.
type Ingress struct {
	c      *Cluster
	r      *ring.Ring[*job]
	group  int
	stop   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewIngress starts the ring consumers over a running cluster. Close the
// Ingress before closing the cluster.
func NewIngress(c *Cluster, cfg IngressConfig) *Ingress {
	group := cfg.MaxGroup
	if group <= 0 {
		group = DefaultMaxGroup
	}
	g := &Ingress{
		c:     c,
		r:     ring.New[*job](cfg.Shards, cfg.ShardCapacity),
		group: group,
		stop:  make(chan struct{}),
	}
	for s := 0; s < g.r.Shards(); s++ {
		g.wg.Add(1)
		go g.consume(s)
	}
	return g
}

// consume drains one shard in groups for the Ingress's lifetime. A wakeup
// may race the producer, so an empty drain just parks again.
func (g *Ingress) consume(shard int) {
	defer g.wg.Done()
	buf := make([]*job, 0, g.group)
	for {
		buf = g.r.Drain(shard, buf[:0], g.group)
		if len(buf) > 0 {
			g.c.submitBatch(buf)
			continue
		}
		if !g.r.Wait(shard, g.stop) {
			// Stopping: flush what is already published. Anything enqueued
			// after this final pass is swept by Close.
			for {
				buf = g.r.Drain(shard, buf[:0], g.group)
				if len(buf) == 0 {
					return
				}
				g.c.submitBatch(buf)
			}
		}
	}
}

// SubmitCtx dispatches one request through the submit ring and blocks
// until it completes or the context is done — Cluster.SubmitCtx semantics
// with the handoff amortized. A full ring returns ErrCongested
// immediately (backpressure); a request whose context fires while ringed
// is discarded by the drain without touching the queue.
func (g *Ingress) SubmitCtx(ctx context.Context, req Request) (Result, error) {
	rec := g.c.obsRec.Load()
	if err := ctx.Err(); err != nil {
		rec.RecordSubmit()
		rec.RecordCancel()
		return Result{}, cancelErr(err)
	}
	if g.closed.Load() {
		rec.RecordSubmit()
		rec.RecordReject(obs.RejectClosed)
		return Result{}, ErrClusterClosed
	}
	t, aerr := g.c.admitTenant(req.Tenant, req.Length+req.MaxNewTokens)
	if aerr != nil {
		// Rejected at the door: the request never enters the ring.
		g.c.rejectAdmission(rec)
		return Result{}, aerr
	}
	rec.RecordSubmit()
	j := newJob(req.Length)
	j.tokenize = req.Tokenize
	if req.MaxNewTokens > 0 {
		j.maxNew = req.MaxNewTokens
	}
	if d, ok := ctx.Deadline(); ok {
		j.deadline = d
	}
	g.c.applyTenant(j, t)
	if _, ok := g.r.Enqueue(j); !ok {
		jobPool.Put(j)
		rec.RecordReject(obs.RejectCongested)
		return Result{}, fmt.Errorf("%w: ingress ring full", ErrCongested)
	}
	if g.closed.Load() {
		// Close may already have swept the rings; reclaim the job if the
		// sweep has not resolved it, so this submitter cannot hang.
		if j.state.CompareAndSwap(jobPending, jobCancelled) {
			rec.RecordReject(obs.RejectClosed)
			return Result{}, ErrClusterClosed
		}
	}
	return g.c.await(ctx, j, rec)
}

// Close stops the consumers, drains the rings, and fails anything still
// ringed with ErrClusterClosed. Idempotent.
func (g *Ingress) Close() {
	if g.closed.Swap(true) {
		return
	}
	close(g.stop)
	g.wg.Wait()
	// Sweep stragglers that raced the closed flag: their submitters are
	// parked in await and must see a typed error. Enqueuers that arrive
	// after this sweep observe closed==true and reclaim their own job.
	buf := make([]*job, 0, g.group)
	for s := 0; s < g.r.Shards(); s++ {
		for {
			buf = g.r.Drain(s, buf[:0], g.group)
			if len(buf) == 0 {
				break
			}
			for _, j := range buf {
				g.c.failJob(j, ErrClusterClosed)
			}
		}
	}
}
