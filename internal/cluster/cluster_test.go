package cluster

import (
	"sync"
	"testing"
	"time"

	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/trace"
)

func rsFactory(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
	return dispatch.NewRequestScheduler(ml)
}

func testProfile(t testing.TB, lengths []int) *profiler.Profile {
	t.Helper()
	p, err := profiler.StaticProfile(model.BertBase(), lengths, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	p := testProfile(t, []int{512})
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil profile", Config{InitialAllocation: []int{1}, Dispatcher: rsFactory}},
		{"nil dispatcher", Config{Profile: p, InitialAllocation: []int{1}}},
		{"dim mismatch", Config{Profile: p, InitialAllocation: []int{1, 1}, Dispatcher: rsFactory}},
		{"negative", Config{Profile: p, InitialAllocation: []int{-2}, Dispatcher: rsFactory}},
		{"empty", Config{Profile: p, InitialAllocation: []int{0}, Dispatcher: rsFactory}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestSubmitMeasuresModeledLatency(t *testing.T) {
	p := testProfile(t, []int{512})
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1},
		Dispatcher:        rsFactory,
		Overhead:          -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lat, err := c.Submit(100)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Runtimes[0].Latency // ~4.86 ms
	if lat < want || lat > want+20*time.Millisecond {
		t.Errorf("latency = %v, want >= %v and close to it", lat, want)
	}
}

func TestTimeScaleCompressesWallTime(t *testing.T) {
	p := testProfile(t, []int{512})
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1},
		Dispatcher:        rsFactory,
		TimeScale:         0.5,
		Overhead:          -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	lat, err := c.Submit(100)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	// Reported latency is back in model time (>= one modeled execution);
	// wall time is roughly half of it.
	if lat < p.Runtimes[0].Latency {
		t.Errorf("reported latency %v below one modeled execution %v", lat, p.Runtimes[0].Latency)
	}
	if wall > lat {
		t.Errorf("wall time %v should be compressed below modeled %v", wall, lat)
	}
}

func TestQueueingAccumulates(t *testing.T) {
	p := testProfile(t, []int{512})
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1},
		Dispatcher:        rsFactory,
		Overhead:          -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Fire 5 requests at once into a single worker: the last should wait
	// ~5 executions.
	const n = 5
	chans := make([]<-chan time.Duration, n)
	for i := 0; i < n; i++ {
		ch, err := c.SubmitAsync(100)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	var max time.Duration
	for _, ch := range chans {
		if lat := <-ch; lat > max {
			max = lat
		}
	}
	exec := p.Runtimes[0].Latency
	if max < 4*exec {
		t.Errorf("max latency %v should show queueing (>= ~4 executions of %v)", max, exec)
	}
}

func TestDispatchSpreadsAcrossWorkers(t *testing.T) {
	p := testProfile(t, []int{512})
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{4},
		Dispatcher:        rsFactory,
		Overhead:          -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 8
	var wg sync.WaitGroup
	latencies := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		ch, err := c.SubmitAsync(100)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			latencies[i] = <-ch
		}(i)
	}
	wg.Wait()
	// 8 requests over 4 workers: max should be ~2 executions, not 8.
	exec := p.Runtimes[0].Latency
	for _, lat := range latencies {
		if lat > 4*exec {
			t.Errorf("latency %v suggests no load balancing (exec %v)", lat, exec)
		}
	}
}

func TestSubmitErrors(t *testing.T) {
	p := testProfile(t, []int{64, 128})
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1, 1},
		Dispatcher:        rsFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(4000); err == nil {
		t.Error("over-long request should fail")
	}
	c.Close()
	if _, err := c.Submit(10); err != ErrClosed {
		t.Errorf("submit after close = %v, want ErrClosed", err)
	}
	c.Close() // double close is safe
}

func TestQueueOverflow(t *testing.T) {
	p := testProfile(t, []int{512})
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1},
		Dispatcher:        rsFactory,
		QueueDepth:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	overflowed := false
	for i := 0; i < 10; i++ {
		if _, err := c.SubmitAsync(100); err != nil {
			overflowed = true
			break
		}
	}
	if !overflowed {
		t.Error("depth-2 queue should overflow under a burst of 10")
	}
}

func TestReplaySmallTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time replay")
	}
	p := testProfile(t, model.BertBaseArch.RuntimeLengths())
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1, 1, 1, 1, 1, 1, 1, 1},
		Dispatcher:        rsFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tr, err := trace.Generate(trace.Stable(3, 150, 2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count()+res.Rejected != len(tr.Requests) {
		t.Errorf("replay lost requests: %d + %d != %d", res.Latency.Count(), res.Rejected, len(tr.Requests))
	}
	if res.Summary.Mean <= 0 {
		t.Error("mean latency should be positive")
	}
	if res.Summary.Mean > 60*time.Millisecond {
		t.Errorf("lightly loaded cluster mean %v unexpectedly high", res.Summary.Mean)
	}
}

func TestReplayNilTrace(t *testing.T) {
	p := testProfile(t, []int{512})
	c, err := New(Config{Profile: p, InitialAllocation: []int{1}, Dispatcher: rsFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Replay(nil); err == nil {
		t.Error("nil trace should fail")
	}
}

func TestInstances(t *testing.T) {
	p := testProfile(t, []int{64, 512})
	c, err := New(Config{Profile: p, InitialAllocation: []int{2, 1}, Dispatcher: rsFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Instances(); got != 3 {
		t.Errorf("instances = %d, want 3", got)
	}
}

// TestConcurrentSubmitClose races many submitters against Close. The
// RWMutex submission protocol must make this safe: every Submit either
// completes or reports ErrClosed — never a send on a closed channel.
func TestConcurrentSubmitClose(t *testing.T) {
	p := testProfile(t, []int{512})
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{4},
		Dispatcher:        rsFactory,
		TimeScale:         0.01,
		Overhead:          -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				if _, err := c.Submit(1 + i%512); err != nil {
					if err == ErrClosed {
						return
					}
					continue // overflow etc. is fine; crashes are not
				}
			}
		}()
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	c.Close()
	wg.Wait()
	if _, err := c.Submit(10); err != ErrClosed {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestConcurrentSubmitTopologyChurn races submitters against instance
// add/remove churn — the auto-scaler reshaping the cluster mid-traffic.
func TestConcurrentSubmitTopologyChurn(t *testing.T) {
	p := testProfile(t, []int{256, 512})
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{2, 2},
		Dispatcher:        rsFactory,
		TimeScale:         0.01,
		Overhead:          -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Errors (overflow, instance no longer deployed) are
				// legitimate under churn; panics and races are the bug.
				_, _ = c.Submit(1 + (g*131+i)%512)
			}
		}(g)
	}
	for i := 0; i < 40; i++ {
		rt := i % 2
		if _, err := c.AddInstance(rt); err != nil {
			t.Errorf("AddInstance: %v", err)
			break
		}
		if _, err := c.RemoveInstance(rt); err != nil {
			t.Errorf("RemoveInstance: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if got := c.Instances(); got != 4 {
		t.Errorf("instances after churn = %d, want 4", got)
	}
}
