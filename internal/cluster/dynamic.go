package cluster

import (
	"fmt"
	"time"
)

// AddInstance provisions one new worker serving the given runtime. It is
// the real-time counterpart of the simulator's scale-out/replacement
// instance bring-up and returns the new instance's ID.
func (c *Cluster) AddInstance(rtIdx int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	if rtIdx < 0 || rtIdx >= len(c.cfg.Profile.Runtimes) {
		return 0, fmt.Errorf("cluster: runtime %d outside [0, %d)", rtIdx, len(c.cfg.Profile.Runtimes))
	}
	id := c.nextID
	if err := c.addWorker(rtIdx); err != nil {
		return 0, err
	}
	return id, nil
}

// RemoveInstance drains and stops the least busy worker of the given
// runtime (any runtime when rtIdx is -1): it stops receiving dispatches
// immediately and finishes its queued work in the background. It returns
// the removed instance's ID, or an error when the runtime has no workers.
func (c *Cluster) RemoveInstance(rtIdx int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	var victim *worker
	victimOut := 0
	for _, w := range c.workers {
		if rtIdx >= 0 && w.inst.Runtime != rtIdx {
			continue
		}
		o := w.inst.Outstanding()
		if victim == nil || o < victimOut ||
			(o == victimOut && w.inst.ID < victim.inst.ID) {
			victim, victimOut = w, o
		}
	}
	if victim == nil {
		return 0, fmt.Errorf("cluster: no instance to remove for runtime %d", rtIdx)
	}
	c.ml.Remove(victim.inst.ID)
	delete(c.workers, victim.inst.ID)
	close(victim.ch) // the worker goroutine drains its queue and exits
	return victim.inst.ID, nil
}

// Replace swaps one instance from runtime from to runtime to, emulating
// the ~1 s swap of the paper's prototype: the old worker drains in the
// background and the new one comes up after swapDelay (0 for immediate).
// It returns the new instance's ID.
func (c *Cluster) Replace(from, to int, swapDelay time.Duration) (int, error) {
	if _, err := c.RemoveInstance(from); err != nil {
		return 0, err
	}
	if swapDelay > 0 {
		time.Sleep(swapDelay)
	}
	return c.AddInstance(to)
}

// Allocation returns the current per-runtime worker counts.
func (c *Cluster) Allocation() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]int, len(c.cfg.Profile.Runtimes))
	for _, w := range c.workers {
		out[w.inst.Runtime]++
	}
	return out
}

// Outstanding returns the total dispatched-but-unfinished request count,
// including jobs admitted but still waiting their fair turn in a
// multi-tenant cluster. The sum reads atomic counters; no cluster lock is
// taken.
func (c *Cluster) Outstanding() int {
	return c.ml.TotalOutstanding() + c.fairQueueLen()
}
