package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"arlo/internal/obs"
)

func ingressCluster(t *testing.T, rec *obs.Recorder, alloc []int, lengths []int) *Cluster {
	t.Helper()
	c, err := New(Config{
		Profile:           testProfile(t, lengths),
		InitialAllocation: alloc,
		Dispatcher:        rsFactory,
		Overhead:          -1,
		Observer:          rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestIngressSubmitCtx pins the drop-in contract: a request through the
// ring completes like one through Cluster.SubmitCtx, and its span gains
// the ingress_wait stage.
func TestIngressSubmitCtx(t *testing.T) {
	rec := obs.NewRecorder(1)
	c := ingressCluster(t, rec, []int{2}, []int{512})
	defer c.Close()
	g := NewIngress(c, IngressConfig{})
	defer g.Close()

	res, err := g.SubmitCtx(context.Background(), Request{Length: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= 0 {
		t.Errorf("latency = %v, want > 0", res.Latency)
	}
	if res.Span.IngressWait <= 0 {
		t.Errorf("span ingress_wait = %v, want > 0", res.Span.IngressWait)
	}
	if res.Span.Exec <= 0 {
		t.Errorf("span exec = %v, want > 0", res.Span.Exec)
	}
	if got := rec.Completed(); got != 1 {
		t.Errorf("completed = %d, want 1", got)
	}
}

// TestIngressCancelWhileRinged drives a job through the ring while its
// context is already on the way out: whichever side wins the CAS, the
// submitter gets a typed error or a result, never a hang, and the books
// balance.
func TestIngressCancelWhileRinged(t *testing.T) {
	rec := obs.NewRecorder(1)
	c := ingressCluster(t, rec, []int{1}, []int{512})
	defer c.Close()
	g := NewIngress(c, IngressConfig{Shards: 1})
	defer g.Close()

	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() {
				// Cancel at staggered points: some while ringed, some while
				// queued at the worker, some after completion.
				time.Sleep(time.Duration(i%8) * 100 * time.Microsecond)
				cancel()
				close(done)
			}()
			res, err := g.SubmitCtx(ctx, Request{Length: 100})
			<-done
			if err != nil && !errors.Is(err, ErrDeadlineExceeded) && !errors.Is(err, ErrCongested) {
				t.Errorf("unexpected error: %v", err)
			}
			if err == nil && res.Latency <= 0 {
				t.Errorf("nil error but latency %v", res.Latency)
			}
		}(i)
	}
	wg.Wait()

	// Conservation at the cluster boundary: every submission resolved
	// exactly one way.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if rec.Submitted() == rec.Completed()+rec.Cancelled()+rec.Rejected() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if s, c2, x, r := rec.Submitted(), rec.Completed(), rec.Cancelled(), rec.Rejected(); s != c2+x+r {
		t.Errorf("books: submitted %d != completed %d + cancelled %d + rejected %d", s, c2, x, r)
	}
	if got := rec.Submitted(); got != n {
		t.Errorf("submitted = %d, want %d", got, n)
	}
}

// TestSubmitBatchCompletes exercises the exported group API end to end.
func TestSubmitBatchCompletes(t *testing.T) {
	rec := obs.NewRecorder(1)
	c := ingressCluster(t, rec, []int{2}, []int{512})
	defer c.Close()

	reqs := make([]Request, 16)
	for i := range reqs {
		reqs[i] = Request{Length: 64 + i}
	}
	out := c.SubmitBatch(context.Background(), reqs)
	if len(out) != len(reqs) {
		t.Fatalf("got %d results, want %d", len(out), len(reqs))
	}
	for i, br := range out {
		if br.Err != nil {
			t.Errorf("member %d: %v", i, br.Err)
		} else if br.Result.Latency <= 0 {
			t.Errorf("member %d: latency %v", i, br.Result.Latency)
		}
	}
	if got := rec.Completed(); got != int64(len(reqs)) {
		t.Errorf("completed = %d, want %d", got, len(reqs))
	}
}

// TestSubmitBatchSpentDeadline pins the drain-time rule: a member whose
// deadline is already spent when its group is dispatched is rejected with
// ErrDeadlineExceeded before touching the queue.
func TestSubmitBatchSpentDeadline(t *testing.T) {
	rec := obs.NewRecorder(1)
	c := ingressCluster(t, rec, []int{1}, []int{512})
	defer c.Close()

	jobs := []*job{newJob(100), newJob(100)}
	jobs[0].deadline = time.Now().Add(-time.Second) // spent before drain
	c.submitBatch(jobs)

	_, err := c.await(context.Background(), jobs[0], rec)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("spent-deadline member: err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, should also match context.DeadlineExceeded", err)
	}
	if res, err := c.await(context.Background(), jobs[1], rec); err != nil || res.Latency <= 0 {
		t.Fatalf("live member: res=%v err=%v, want completion", res, err)
	}
	if got := rec.RejectedFor(obs.RejectDeadline); got != 1 {
		t.Errorf("deadline rejects = %d, want 1", got)
	}
	// The rejected member never dispatched: no residual load.
	if got := c.Outstanding(); got != 0 {
		t.Errorf("outstanding = %d, want 0", got)
	}
}

// TestSubmitBatchCancelledMemberDiscarded pins the cancellation-while-
// ringed half of the drain contract: a job whose submitter already won
// the pending→cancelled CAS is discarded without dispatch.
func TestSubmitBatchCancelledMemberDiscarded(t *testing.T) {
	rec := obs.NewRecorder(1)
	c := ingressCluster(t, rec, []int{1}, []int{512})
	defer c.Close()

	j := newJob(100)
	if !j.state.CompareAndSwap(jobPending, jobCancelled) {
		t.Fatal("fresh job not pending")
	}
	live := newJob(100)
	c.submitBatch([]*job{j, live})
	if res, err := c.await(context.Background(), live, rec); err != nil || res.Latency <= 0 {
		t.Fatalf("live member: res=%v err=%v, want completion", res, err)
	}
	if got := c.Outstanding(); got != 0 {
		t.Errorf("outstanding = %d, want 0 (cancelled member must not dispatch)", got)
	}
}

// TestIngressClose checks shutdown: Close resolves every in-flight
// submission (completion or ErrClusterClosed) and later submissions are
// refused immediately.
func TestIngressClose(t *testing.T) {
	rec := obs.NewRecorder(1)
	c := ingressCluster(t, rec, []int{1}, []int{512})
	defer c.Close()
	g := NewIngress(c, IngressConfig{Shards: 2})

	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := g.SubmitCtx(context.Background(), Request{Length: 100})
			errs <- err
		}()
	}
	time.Sleep(500 * time.Microsecond)
	g.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !errors.Is(err, ErrClusterClosed) && !errors.Is(err, ErrCongested) {
			t.Errorf("unexpected error after Close: %v", err)
		}
	}
	if _, err := g.SubmitCtx(context.Background(), Request{Length: 100}); !errors.Is(err, ErrClusterClosed) {
		t.Errorf("submit after Close: err = %v, want ErrClusterClosed", err)
	}
	g.Close() // idempotent
}

// BenchmarkSubmitPerRequest is the baseline for BenchmarkSubmitGrouped:
// the same 64 requests in flight, but each submitted through its own
// SubmitCtx (one topology RLock + one stripe lock acquisition apiece).
func BenchmarkSubmitPerRequest(b *testing.B) {
	p := testProfile(b, []int{512})
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{4},
		Dispatcher:        rsFactory,
		TimeScale:         1e-9,
		Overhead:          -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.SetParallelism(DefaultMaxGroup)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.SubmitCtx(context.Background(), Request{Length: 100}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSubmitGrouped measures the amortized group path against the
// per-request baseline in BenchmarkSubmitCtx-style terms: allocs/op and
// ns/op of the submission handoff with near-zero emulated compute.
func BenchmarkSubmitGrouped(b *testing.B) {
	p := testProfile(b, []int{512})
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{4},
		Dispatcher:        rsFactory,
		TimeScale:         1e-9,
		Overhead:          -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	reqs := make([]Request, DefaultMaxGroup)
	for i := range reqs {
		reqs[i] = Request{Length: 100}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(reqs) {
		out := c.SubmitBatch(context.Background(), reqs)
		for _, br := range out {
			if br.Err != nil {
				b.Fatal(br.Err)
			}
		}
	}
}
