// Multi-tenant serving support for the live cluster: token-bucket
// admission in front of every submit path, SLO-class policy application,
// and the weighted-fair dispatch pump.
//
// With Config.Tenants unset nothing here runs — submissions take exactly
// the pre-tenancy code path, which is what keeps the Fig. 9 dispatch hot
// path allocation-free and unchanged. With a registry configured:
//
//  1. Every submit path (SubmitCtx, SubmitBatch, the ingress rings,
//     Replay) resolves the request's tenant and runs token-bucket
//     admission *before* leasing queue state: a rejected request never
//     touches the multi-level queue, so a bursting tenant cannot trigger
//     λ-congestion demotions for everyone else.
//  2. Admitted jobs flow through a start-time-fair queue (queue.Fair)
//     drained by a single pump goroutine, so dispatch order interleaves
//     tenants by weight x class bias instead of arrival order: a
//     backlogged tenant's surplus waits behind everyone else's current
//     share rather than ahead of it.
//  3. The tenant's SLO class stamps per-request policy: an implicit
//     deadline for interactive requests and a batching-window factor the
//     batched worker's Former honors per member.
package cluster

import (
	"context"
	"errors"
	"time"

	"arlo/internal/dispatch"
	"arlo/internal/obs"
	"arlo/internal/tenant"
)

// ErrRateLimited is the admission-rejection sentinel: the resolved
// tenant's token bucket had insufficient budget. The concrete error is a
// *tenant.RateLimitError carrying the Retry-After hint.
var ErrRateLimited = tenant.ErrRateLimited

// Tenants returns the cluster's tenant registry (nil when multi-tenancy
// is disabled) — the admin API reads and live-updates records through it.
func (c *Cluster) Tenants() *tenant.Registry { return c.tenants }

// admitTenant resolves a request's tenant id and runs token-bucket
// admission for its token cost (input + requested output tokens). With no
// registry it returns (nil, nil) without any work. Allocation-free on
// admission; a rejection allocates only the error.
func (c *Cluster) admitTenant(id string, tokens int) (*tenant.Tenant, error) {
	reg := c.tenants
	if reg == nil {
		return nil, nil
	}
	t := reg.Get(id)
	if ok, retry := t.Admit(tokens); !ok {
		return nil, &tenant.RateLimitError{Tenant: t.ID(), RetryAfter: retry}
	}
	return t, nil
}

// rejectAdmission books one admission rejection: a submission attempt
// with a rate-limited outcome, matching the submit/reject pairing every
// other refusal path keeps.
func (c *Cluster) rejectAdmission(rec *obs.Recorder) {
	rec.RecordSubmit()
	rec.RecordReject(obs.RejectRateLimited)
}

// applyTenant stamps tenant policy onto a freshly leased job: the record
// itself (for fair-share accounting and the span label), the class's
// implicit deadline when the submitter brought none, and the class's
// batch-collection window.
func (c *Cluster) applyTenant(j *job, t *tenant.Tenant) {
	if t == nil {
		return
	}
	j.tenant = t
	class := t.Class()
	if j.deadline.IsZero() {
		if d := class.DeadlineDefault(c.cfg.Profile.SLO); d > 0 {
			j.deadline = time.Now().Add(time.Duration(float64(d) * c.scale))
		}
	}
	if c.maxBatch > 1 && c.batchDelay > 0 {
		j.window = time.Duration(float64(c.batchDelay) * class.WindowFactor() * c.scale)
	}
}

// fairEnqueue hands an admitted job to the fair queue in place of direct
// routing. The pump drains it in weighted-fair order. Jobs submitted
// without tenant resolution (SubmitAsync, internal paths) are accounted
// to the default tenant.
func (c *Cluster) fairEnqueue(j *job) error {
	if j.tenant == nil {
		j.tenant = c.tenants.Get(tenant.DefaultID)
	}
	t := j.tenant
	weight := t.Weight() * t.Class().PriorityBias()
	cost := float64(j.length + j.maxNew)
	if !c.fairQ.Push(t.ID(), weight, cost, j) {
		return ErrClusterClosed
	}
	return nil
}

// runFairPump is the single dispatch pump of a multi-tenant cluster: it
// pops jobs in weighted-fair order and routes them through the normal
// dispatch path. Transient dispatch failures (congestion, no instances
// mid-recovery) retry against the requeue budget; terminal ones fail the
// job through the done channel exactly like a failover displacement.
// After Close the queue drains — leftover jobs fail with ErrClusterClosed
// so every submitter returns.
func (c *Cluster) runFairPump() {
	defer c.wg.Done()
	for {
		j, ok := c.fairQ.Pop()
		if !ok {
			return
		}
		if j.state.Load() == jobCancelled {
			// The submitter cancelled while the job waited its fair turn; it
			// already returned, so the pump owns (and discards) the job.
			jobPool.Put(j)
			continue
		}
		c.pumpDispatch(j)
	}
}

// pumpDispatch routes one fairly-ordered job, bounded-retrying transients.
func (c *Cluster) pumpDispatch(j *job) {
	// Once route succeeds the job belongs to its worker and submitter — it
	// can complete and be pool-recycled before this returns — so capture
	// the accounting fields while the pump still owns it.
	t := j.tenant
	cost := j.length + j.maxNew
	for attempt := 0; ; attempt++ {
		err := c.route(context.Background(), j)
		if err == nil {
			if t != nil {
				t.RecordDispatched(cost)
			}
			return
		}
		if errors.Is(err, ErrClusterClosed) || errors.Is(err, dispatch.ErrTooLong) ||
			errors.Is(err, dispatch.ErrNoInstances) || attempt >= c.budget {
			c.failJob(j, err)
			return
		}
		// Congested: back off briefly and retry. This holds the pump (and
		// with it every tenant) for at most budget * redispatchBackoff — a
		// saturated cluster is already not making fair progress.
		time.Sleep(redispatchBackoff)
		if j.state.Load() == jobCancelled {
			jobPool.Put(j)
			return
		}
	}
}

// fairQueueLen reports jobs admitted but not yet routed (0 without a
// registry) — part of the cluster's outstanding count so drain barriers
// see fairly-queued work.
func (c *Cluster) fairQueueLen() int {
	if c.fairQ == nil {
		return 0
	}
	return c.fairQ.Len()
}

// tenantSnapshot renders the registry's books as scrape-time stats with
// dispatch share normalized over cumulative dispatched token cost.
func (c *Cluster) tenantSnapshot() []obs.TenantStat {
	stats := c.tenants.Stats()
	var totalDispatched int64
	for _, s := range stats {
		totalDispatched += s.Dispatched
	}
	out := make([]obs.TenantStat, len(stats))
	for i, s := range stats {
		share := 0.0
		if totalDispatched > 0 {
			share = float64(s.Dispatched) / float64(totalDispatched)
		}
		out[i] = obs.TenantStat{
			Tenant:   s.ID,
			Admitted: s.Admitted,
			Rejected: s.Rejected,
			Share:    share,
		}
	}
	return out
}

// submitBatchFair is submitBatch's multi-tenant counterpart: each live
// member of a drained group takes its fair turn through the pump instead
// of dispatching inline. nil slots are SubmitBatch members already
// resolved by admission.
func (c *Cluster) submitBatchFair(jobs []*job) {
	now := time.Now()
	for _, j := range jobs {
		if j == nil {
			continue
		}
		if j.state.Load() == jobCancelled {
			jobPool.Put(j)
			continue
		}
		if !j.deadline.IsZero() && !now.Before(j.deadline) {
			c.failJob(j, cancelErr(context.DeadlineExceeded))
			continue
		}
		j.ingressWait = now.Sub(j.started)
		if err := c.fairEnqueue(j); err != nil {
			c.failJob(j, err)
		}
	}
}
