package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"arlo/internal/obs"
	"arlo/internal/tenant"
)

func testRegistry(t *testing.T, cfgs ...tenant.Config) *tenant.Registry {
	t.Helper()
	reg, err := tenant.NewRegistry(cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestTenantAdmissionRejects pins the rejection contract: a request over
// the tenant's bucket never touches the queue, surfaces as ErrRateLimited
// with a bounded Retry-After hint, and books exactly one submission with
// one rate-limited rejection on both the recorder and the registry.
func TestTenantAdmissionRejects(t *testing.T) {
	p := testProfile(t, []int{512})
	rec := obs.NewRecorder(4)
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1},
		Dispatcher:        rsFactory,
		Overhead:          -1,
		Observer:          rec,
		Tenants: testRegistry(t,
			tenant.Config{ID: "tight", Capacity: 512, RefillPerSec: 0, Weight: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// First request fits the bucket exactly; the second finds it empty.
	if _, err := c.SubmitCtx(context.Background(), Request{Length: 512, Tenant: "tight"}); err != nil {
		t.Fatalf("in-budget request rejected: %v", err)
	}
	_, err = c.SubmitCtx(context.Background(), Request{Length: 512, Tenant: "tight"})
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-budget request returned %v, want ErrRateLimited", err)
	}
	var rl *tenant.RateLimitError
	if !errors.As(err, &rl) {
		t.Fatalf("rejection %v is not a *tenant.RateLimitError", err)
	}
	if rl.Tenant != "tight" || rl.RetryAfter < time.Millisecond || rl.RetryAfter > time.Hour {
		t.Fatalf("rejection detail %+v", rl)
	}

	if got := rec.RejectedFor(obs.RejectRateLimited); got != 1 {
		t.Fatalf("recorder booked %d rate-limited rejections, want 1", got)
	}
	if got := rec.Submitted(); got != 2 {
		t.Fatalf("recorder booked %d submissions, want 2", got)
	}
	st := c.Tenants().Get("tight").Stat()
	if st.Admitted != 1 || st.Rejected != 1 {
		t.Fatalf("registry books admitted=%d rejected=%d, want 1/1", st.Admitted, st.Rejected)
	}
}

// TestTenantUnknownFallsBackToDefault: requests with an empty or
// unregistered tenant resolve to the unlimited default record, so
// single-tenant callers are untouched by enabling the registry.
func TestTenantUnknownFallsBackToDefault(t *testing.T) {
	p := testProfile(t, []int{512})
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1},
		Dispatcher:        rsFactory,
		Overhead:          -1,
		Tenants:           testRegistry(t, tenant.Config{ID: "a", Weight: 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, id := range []string{"", "unregistered"} {
		if _, err := c.SubmitCtx(context.Background(), Request{Length: 128, Tenant: id}); err != nil {
			t.Fatalf("tenant %q: %v", id, err)
		}
	}
	st := c.Tenants().Get(tenant.DefaultID).Stat()
	if st.Admitted != 2 {
		t.Fatalf("default tenant admitted %d, want 2", st.Admitted)
	}
}

// TestTenantNilRegistryUnchanged: without a registry the tenant field is
// inert — no admission, no fair queue, Tenants() is nil. This is the
// single-tenant fast path the Fig. 9 benchmark runs on.
func TestTenantNilRegistryUnchanged(t *testing.T) {
	p := testProfile(t, []int{512})
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1},
		Dispatcher:        rsFactory,
		Overhead:          -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Tenants() != nil {
		t.Fatal("Tenants() non-nil without a registry")
	}
	if _, err := c.SubmitCtx(context.Background(), Request{Length: 128, Tenant: "anyone"}); err != nil {
		t.Fatalf("tenant-labeled request on single-tenant cluster: %v", err)
	}
	if n := c.fairQueueLen(); n != 0 {
		t.Fatalf("fair queue reports %d jobs without a registry", n)
	}
}

// TestTenantClassPolicyOnJob pins applyTenant's stamping: interactive
// requests get the model SLO as an implicit deadline (scaled), class
// window factors scale the batch-collection window, and a deadline the
// submitter brought is never overwritten.
func TestTenantClassPolicyOnJob(t *testing.T) {
	p := testProfile(t, []int{512})
	reg := testRegistry(t,
		tenant.Config{ID: "int", SLOClass: "interactive"},
		tenant.Config{ID: "std"},
		tenant.Config{ID: "bat", SLOClass: "batch"},
	)
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1},
		Dispatcher:        rsFactory,
		Overhead:          -1,
		MaxBatch:          4,
		BatchDelay:        2 * time.Millisecond,
		Tenants:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cases := []struct {
		id         string
		wantDL     bool
		wantWindow time.Duration
	}{
		{"int", true, 500 * time.Microsecond}, // 2ms x 0.25
		{"std", false, 2 * time.Millisecond},
		{"bat", false, 8 * time.Millisecond}, // 2ms x MaxWindowFactor
	}
	for _, tc := range cases {
		j := newJob(128)
		before := time.Now()
		c.applyTenant(j, reg.Get(tc.id))
		if j.deadline.IsZero() == tc.wantDL {
			t.Errorf("%s: implicit deadline set=%v, want %v", tc.id, !j.deadline.IsZero(), tc.wantDL)
		}
		if tc.wantDL {
			want := before.Add(p.SLO)
			if j.deadline.Before(want) || j.deadline.After(want.Add(50*time.Millisecond)) {
				t.Errorf("%s: implicit deadline %v not ~SLO from now", tc.id, j.deadline)
			}
		}
		if j.window != tc.wantWindow {
			t.Errorf("%s: window %v, want %v", tc.id, j.window, tc.wantWindow)
		}
		jobPool.Put(j)
	}

	// A submitter-provided deadline survives class policy.
	j := newJob(128)
	own := time.Now().Add(42 * time.Second)
	j.deadline = own
	c.applyTenant(j, reg.Get("int"))
	if !j.deadline.Equal(own) {
		t.Errorf("class policy overwrote the submitter's deadline: %v", j.deadline)
	}
	jobPool.Put(j)
}

// TestTenantFairShareNoStarvation is the end-to-end starvation test: a
// noisy tenant floods 9x the victim's request count into a one-instance
// cluster, and weighted-fair dispatch must interleave the victim's
// requests near the front instead of behind the noisy backlog. With a
// FIFO (the pre-tenancy order) the victim's last completion would be near
// position 1000; fair sharing bounds it near 2x the victim's own count.
func TestTenantFairShareNoStarvation(t *testing.T) {
	const noisyN, victimN = 900, 100
	p := testProfile(t, []int{512})
	reg := testRegistry(t,
		tenant.Config{ID: "noisy", Weight: 1},
		tenant.Config{ID: "victim", Weight: 1},
	)
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1},
		Dispatcher:        rsFactory,
		TimeScale:         0.02,
		Overhead:          -1,
		QueueDepth:        8,
		Tenants:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Completion order equals fair dispatch order on one instance; each
	// submitter records its finishing position.
	var pos atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	victimPos := make([]int64, 0, victimN)
	var failures atomic.Int64
	submit := func(id string, n int, record bool) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := c.SubmitCtx(context.Background(), Request{Length: 512, Tenant: id})
				at := pos.Add(1)
				if err != nil {
					failures.Add(1)
					return
				}
				if record {
					mu.Lock()
					victimPos = append(victimPos, at)
					mu.Unlock()
				}
			}()
		}
	}
	submit("noisy", noisyN, false)
	// Let the noisy backlog build in the fair queue before the victim
	// arrives — the worst case for a FIFO.
	time.Sleep(8 * time.Millisecond)
	submit("victim", victimN, true)
	wg.Wait()

	// A heavily backlogged one-instance cluster may shed a stray request
	// through the dispatch congestion budget; tolerate noise but not a
	// pattern.
	if n := failures.Load(); n > 10 {
		t.Fatalf("%d requests failed", n)
	}
	if len(victimPos) < victimN-10 {
		t.Fatalf("recorded only %d victim completions", len(victimPos))
	}
	var worst int64
	for _, p := range victimPos {
		if p > worst {
			worst = p
		}
	}
	// Equal weights entitle the victim to every other dispatch once
	// present: its 100 requests finish within ~200 slots of its arrival
	// point. 450 of 1000 leaves headroom for the head start and in-flight
	// skew while still being far from the FIFO's ~1000.
	if worst > 450 {
		t.Fatalf("victim's last completion at position %d of %d — starved behind the noisy backlog",
			worst, noisyN+victimN)
	}

	// Every completed request was dispatched through the fair pump and
	// booked at its token cost — the books cover the whole drained load.
	noisySt := reg.Get("noisy").Stat()
	victimSt := reg.Get("victim").Stat()
	wantTokens := int64(noisyN+victimN-int(failures.Load())) * 512
	if got := noisySt.Dispatched + victimSt.Dispatched; got != wantTokens {
		t.Fatalf("dispatched books total %d tokens, want %d", got, wantTokens)
	}
}

// TestTenantWeightBiasesOrder: with a 9:1 weight edge the victim's whole
// backlog overtakes most of the noisy queue even though the noisy tenant
// arrived first.
func TestTenantWeightBiasesOrder(t *testing.T) {
	const noisyN, victimN = 600, 100
	p := testProfile(t, []int{512})
	reg := testRegistry(t,
		tenant.Config{ID: "noisy", Weight: 1},
		tenant.Config{ID: "victim", Weight: 9},
	)
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1},
		Dispatcher:        rsFactory,
		TimeScale:         0.02,
		Overhead:          -1,
		QueueDepth:        8,
		Tenants:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var pos atomic.Int64
	var wg sync.WaitGroup
	var worst atomic.Int64
	var failures atomic.Int64
	run := func(id string, n int, track bool) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := c.SubmitCtx(context.Background(), Request{Length: 512, Tenant: id})
				at := pos.Add(1)
				if err != nil {
					failures.Add(1)
					return
				}
				if track {
					for {
						w := worst.Load()
						if at <= w || worst.CompareAndSwap(w, at) {
							break
						}
					}
				}
			}()
		}
	}
	run("noisy", noisyN, false)
	time.Sleep(8 * time.Millisecond)
	run("victim", victimN, true)
	wg.Wait()

	if n := failures.Load(); n > 7 {
		t.Fatalf("%d requests failed", n)
	}
	// At 9:1 the victim takes ~9 of every 10 dispatches while backlogged:
	// 100 requests fit in ~112 slots past its arrival point.
	if w := worst.Load(); w > 350 {
		t.Fatalf("victim's last completion at position %d of %d despite 9x weight", w, noisyN+victimN)
	}
}
