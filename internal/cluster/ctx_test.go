package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"arlo/internal/obs"
)

// TestSubmitCtxCancelWhileQueued pins the headline cancellation contract:
// a request whose context fires while it is still queued behind a busy
// worker returns ErrDeadlineExceeded promptly and is discarded without
// executing.
func TestSubmitCtxCancelWhileQueued(t *testing.T) {
	p := testProfile(t, []int{512})
	rec := obs.NewRecorder(1)
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1},
		Dispatcher:        rsFactory,
		Overhead:          -1,
		Observer:          rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Occupy the single worker with a long request, then queue one more.
	blocker, err := c.SubmitAsync(512)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.SubmitCtx(ctx, Request{Length: 100})
		errCh <- err
	}()
	// Let the queued submission land behind the blocker, then cancel it.
	time.Sleep(time.Millisecond)
	start := time.Now()
	cancel()
	err = <-errCh
	waited := time.Since(start)

	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, should also match context.Canceled", err)
	}
	// The cancelled request must not have waited for the blocker's ~5ms
	// execution (it returns as soon as the context fires).
	if waited > 50*time.Millisecond {
		t.Errorf("cancellation took %v, want prompt return", waited)
	}
	if got := rec.Cancelled(); got != 1 {
		t.Errorf("cancelled count = %d, want 1", got)
	}
	<-blocker

	// The worker must discard the cancelled job: after the blocker
	// drains, no outstanding work remains.
	deadline := time.Now().Add(time.Second)
	for c.Outstanding() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := c.Outstanding(); got != 0 {
		t.Errorf("outstanding = %d after drain, want 0", got)
	}
}

func TestSubmitCtxExpiredDeadline(t *testing.T) {
	p := testProfile(t, []int{512})
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1},
		Dispatcher:        rsFactory,
		Overhead:          -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = c.SubmitCtx(ctx, Request{Length: 100})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, should also match context.DeadlineExceeded", err)
	}
	// An already-expired context never dispatches: no load was recorded.
	if got := c.Outstanding(); got != 0 {
		t.Errorf("outstanding = %d, want 0", got)
	}
}

// TestSubmitCtxSpan checks the lifecycle decomposition of a normal
// completion: the span names the executing instance and its runtime
// level, and the parts are consistent with the total.
func TestSubmitCtxSpan(t *testing.T) {
	p := testProfile(t, []int{128, 512})
	rec := obs.NewRecorder(2)
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1, 1},
		Dispatcher:        rsFactory,
		Observer:          rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.SubmitCtx(context.Background(), Request{Length: 100, Tokenize: 42 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Span
	if s.Length != 100 {
		t.Errorf("span length = %d, want 100", s.Length)
	}
	if s.Tokenize != 42*time.Microsecond {
		t.Errorf("span tokenize = %v, want 42µs", s.Tokenize)
	}
	if s.IdealLevel != 0 || s.Level != 0 {
		t.Errorf("span levels = (%d, %d), want (0, 0) on an idle cluster", s.IdealLevel, s.Level)
	}
	if s.Exec <= 0 {
		t.Errorf("span exec = %v, want > 0", s.Exec)
	}
	if s.Total < s.Exec {
		t.Errorf("span total %v < exec %v", s.Total, s.Exec)
	}
	if s.Total != res.Latency {
		t.Errorf("span total %v != result latency %v", s.Total, res.Latency)
	}
	if s.Peeked < 1 {
		t.Errorf("span peeked = %d, want >= 1", s.Peeked)
	}
	if s.Enqueued.IsZero() {
		t.Error("span enqueued time is zero")
	}
	if got := rec.Completed(); got != 1 {
		t.Errorf("completed count = %d, want 1", got)
	}
	if got := rec.Submitted(); got != 1 {
		t.Errorf("submitted count = %d, want 1", got)
	}
}

// TestSubmitCtxRecordsDemotion drives a single-instance level 0 into
// congestion so Algorithm 1 demotes to level 1, and checks the (0,1)
// counter and the span attribution.
func TestSubmitCtxRecordsDemotion(t *testing.T) {
	p := testProfile(t, []int{128, 512})
	rec := obs.NewRecorder(2)
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1, 1},
		Dispatcher:        rsFactory,
		Observer:          rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Burst enough length-100 requests to congest the level-0 runtime
	// (capacity 89 at max_length 128 under the 150ms SLO, lambda 0.85, so
	// 76 outstanding reads as congested) without congesting level 1
	// (capacity 30, decayed threshold 0.765). A probe in that window has
	// ideal level 0 but is demoted to level 1. The burst is submitted in
	// microseconds while each job drains in ~1.7ms, so the window is wide;
	// retry with a fresh burst in case a scheduling hiccup drained it.
	sawDemotion := false
	for attempt := 0; attempt < 5 && !sawDemotion; attempt++ {
		var pending []<-chan time.Duration
		for i := 0; i < 85; i++ {
			ch, err := c.SubmitAsync(100)
			if err != nil {
				t.Fatal(err)
			}
			pending = append(pending, ch)
		}
		res, err := c.SubmitCtx(context.Background(), Request{Length: 100})
		if err != nil {
			t.Fatal(err)
		}
		if res.Span.Level > res.Span.IdealLevel {
			sawDemotion = true
			if res.Span.DemotionHops() != res.Span.Level-res.Span.IdealLevel {
				t.Errorf("hops = %d, want %d", res.Span.DemotionHops(), res.Span.Level-res.Span.IdealLevel)
			}
		}
		for _, ch := range pending {
			<-ch
		}
	}
	if !sawDemotion {
		t.Fatal("no demotion observed under saturation")
	}
	if got := rec.Demotions(0, 1); got == 0 {
		t.Error("demotion counter (0,1) = 0, want > 0")
	}
}

// TestSubmitCtxStress races concurrent submissions, cancellations and
// completions (run under -race) and then checks the recorder's books
// balance: every SubmitCtx call is accounted exactly once as completed,
// cancelled or rejected.
func TestSubmitCtxStress(t *testing.T) {
	p := testProfile(t, []int{128, 512})
	rec := obs.NewRecorder(2)
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{2, 2},
		Dispatcher:        rsFactory,
		TimeScale:         0.02, // compress ~5ms executions to ~0.1ms
		Overhead:          -1,
		Observer:          rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 8
		perG       = 60
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				length := 1 + rng.Intn(512)
				if rng.Intn(3) == 0 {
					// A third of the traffic carries a tight deadline
					// that often fires while queued.
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(200))*time.Microsecond)
					res, err := c.SubmitCtx(ctx, Request{Length: length})
					cancel()
					if err == nil && res.Span.Total <= 0 {
						t.Error("completed span has non-positive total")
					}
					if err != nil && !errors.Is(err, ErrDeadlineExceeded) && !errors.Is(err, ErrCongested) {
						t.Errorf("unexpected error: %v", err)
					}
					continue
				}
				res, err := c.SubmitCtx(context.Background(), Request{Length: length})
				if err != nil {
					if !errors.Is(err, ErrCongested) {
						t.Errorf("unexpected error: %v", err)
					}
					continue
				}
				s := res.Span
				if s.Total <= 0 || s.Exec <= 0 || s.Queue < 0 {
					t.Errorf("incomplete span: total=%v exec=%v queue=%v", s.Total, s.Exec, s.Queue)
				}
				if s.Level < s.IdealLevel {
					t.Errorf("span promoted below ideal level: %d < %d", s.Level, s.IdealLevel)
				}
			}
		}(g)
	}
	wg.Wait()
	c.Close()

	submitted := rec.Submitted()
	accounted := rec.Completed() + rec.Cancelled() + rec.Rejected()
	if submitted != goroutines*perG {
		t.Errorf("submitted = %d, want %d", submitted, goroutines*perG)
	}
	if accounted != submitted {
		t.Errorf("books don't balance: submitted=%d completed=%d cancelled=%d rejected=%d",
			submitted, rec.Completed(), rec.Cancelled(), rec.Rejected())
	}
}

// TestSubmitCtxAfterClose maps Close onto the sentinel.
func TestSubmitCtxAfterClose(t *testing.T) {
	p := testProfile(t, []int{512})
	c, err := New(Config{
		Profile:           p,
		InitialAllocation: []int{1},
		Dispatcher:        rsFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	_, err = c.SubmitCtx(context.Background(), Request{Length: 10})
	if !errors.Is(err, ErrClusterClosed) {
		t.Errorf("err = %v, want ErrClusterClosed", err)
	}
	// The deprecated alias must stay identity-comparable.
	if !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed alias match", err)
	}
}
