package tokenizer

import (
	"testing"
	"unicode/utf8"
)

// FuzzTokenizerEncode fuzzes the whole text -> ids path with arbitrary
// input text and truncation limits, checking the invariants the serving
// path relies on:
//
//   - Encode never panics and always yields [CLS] ... [SEP];
//   - every id is within the vocabulary;
//   - a positive maxLen > 1 is a hard cap on the returned length;
//   - encoding is deterministic;
//   - SequenceLength (the allocation-free probe the dispatch path uses)
//     agrees exactly with the untruncated encoding, which itself agrees
//     with Tokenize's piece count;
//   - truncation only ever shortens: the truncated encoding is the full
//     encoding's prefix with [SEP] re-appended.
func FuzzTokenizerEncode(f *testing.F) {
	f.Add("", 0)
	f.Add("hello world", 128)
	f.Add("the quick brown fox jumps over the lazy dog", 8)
	f.Add("Movie was GREAT!!! 10/10 would watch again...", 512)
	f.Add("unaffable electroencephalography", 2)
	f.Add("naïve café — résumé", 16)
	f.Add("日本語のテキスト and mixed ascii", 3)
	f.Add("a\x00b\xffc", 5)
	f.Add("    \t\n\r   ", -7)
	f.Add("@#$%^&*()[]{};:'\",.<>/?\\|`~", 1)

	tok := New()
	f.Fuzz(func(t *testing.T, text string, maxLen int) {
		ids := tok.Encode(text, maxLen)

		if len(ids) < 2 {
			t.Fatalf("Encode(%q, %d) = %d ids, want >= 2 ([CLS] and [SEP])", text, maxLen, len(ids))
		}
		if maxLen > 1 && len(ids) > maxLen {
			t.Fatalf("Encode(%q, %d) = %d ids, exceeds maxLen", text, maxLen, len(ids))
		}
		for i, id := range ids {
			if id < 0 || id >= tok.VocabSize() {
				t.Fatalf("Encode(%q, %d): id[%d] = %d outside vocabulary [0,%d)", text, maxLen, i, id, tok.VocabSize())
			}
		}
		toks := tok.Decode(ids)
		if toks[0] != ClsToken {
			t.Fatalf("Encode(%q, %d) starts with %q, want %s", text, maxLen, toks[0], ClsToken)
		}
		if toks[len(toks)-1] != SepToken {
			t.Fatalf("Encode(%q, %d) ends with %q, want %s", text, maxLen, toks[len(toks)-1], SepToken)
		}

		// Determinism.
		again := tok.Encode(text, maxLen)
		if len(again) != len(ids) {
			t.Fatalf("Encode(%q, %d) nondeterministic: %d then %d ids", text, maxLen, len(ids), len(again))
		}
		for i := range ids {
			if ids[i] != again[i] {
				t.Fatalf("Encode(%q, %d) nondeterministic at %d: %d then %d", text, maxLen, i, ids[i], again[i])
			}
		}

		// The untruncated encoding is the ground truth the other paths
		// must agree with.
		full := tok.Encode(text, 0)
		if got, want := tok.SequenceLength(text), len(full); got != want {
			t.Fatalf("SequenceLength(%q) = %d, Encode length = %d", text, got, want)
		}
		if got, want := len(tok.Tokenize(text)), len(full)-2; got != want {
			t.Fatalf("Tokenize(%q) = %d pieces, Encode has %d", text, got, want)
		}
		// An upper bound tied to the input size: each rune yields at most
		// one piece start, so the encoding cannot explode past the rune
		// count plus the two specials.
		if len(full) > utf8.RuneCountInString(text)+2 {
			t.Fatalf("Encode(%q, 0) = %d ids for %d runes", text, len(full), utf8.RuneCountInString(text))
		}

		// Truncation only shortens and only at the tail.
		if maxLen > 1 && len(full) > maxLen {
			if len(ids) != maxLen {
				t.Fatalf("Encode(%q, %d) truncated to %d ids, want exactly maxLen", text, maxLen, len(ids))
			}
			for i := 0; i < maxLen-1; i++ {
				if ids[i] != full[i] {
					t.Fatalf("Encode(%q, %d): truncation changed prefix at %d", text, maxLen, i)
				}
			}
		}
	})
}
