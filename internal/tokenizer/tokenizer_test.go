package tokenizer

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuiltinVocabValid(t *testing.T) {
	tok := New()
	if tok.VocabSize() < 300 {
		t.Errorf("built-in vocab suspiciously small: %d", tok.VocabSize())
	}
}

func TestNewFromVocabValidation(t *testing.T) {
	if _, err := NewFromVocab(nil); err == nil {
		t.Error("empty vocab should fail")
	}
	if _, err := NewFromVocab([]string{PadToken, UnkToken, ClsToken, SepToken, ""}); err == nil {
		t.Error("empty token should fail")
	}
	if _, err := NewFromVocab([]string{PadToken, UnkToken, ClsToken, SepToken, "a", "a"}); err == nil {
		t.Error("duplicate token should fail")
	}
	for _, missing := range []string{PadToken, UnkToken, ClsToken, SepToken} {
		v := []string{}
		for _, s := range []string{PadToken, UnkToken, ClsToken, SepToken} {
			if s != missing {
				v = append(v, s)
			}
		}
		if _, err := NewFromVocab(v); err == nil {
			t.Errorf("vocab missing %s should fail", missing)
		}
	}
}

func TestTokenizeKnownWords(t *testing.T) {
	tok := New()
	got := tok.Tokenize("The quick data")
	// "the" and "data" are vocabulary words; "quick" splits into pieces.
	if got[0] != "the" {
		t.Errorf("first token = %q, want %q", got[0], "the")
	}
	if got[len(got)-1] != "data" {
		t.Errorf("last token = %q, want %q", got[len(got)-1], "data")
	}
	joined := strings.Join(got, " ")
	if strings.Contains(joined, UnkToken) {
		t.Errorf("ASCII text should never produce UNK with single-char fallback: %v", got)
	}
}

func TestWordPieceGreedyLongestMatch(t *testing.T) {
	tok, err := NewFromVocab([]string{
		PadToken, UnkToken, ClsToken, SepToken,
		"un", "##aff", "##able", "##ffa", "##b", "##le", "u", "##n",
	})
	if err != nil {
		t.Fatal(err)
	}
	got := tok.Tokenize("unaffable")
	want := []string{"un", "##aff", "##able"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", got, want)
		}
	}
}

func TestUnmatchableWordBecomesUnk(t *testing.T) {
	tok, err := NewFromVocab([]string{PadToken, UnkToken, ClsToken, SepToken, "a"})
	if err != nil {
		t.Fatal(err)
	}
	got := tok.Tokenize("ab")
	if len(got) != 1 || got[0] != UnkToken {
		t.Errorf("tokens = %v, want [%s]", got, UnkToken)
	}
}

func TestVeryLongWordBecomesUnk(t *testing.T) {
	tok := New()
	long := strings.Repeat("a", 150)
	got := tok.Tokenize(long)
	if len(got) != 1 || got[0] != UnkToken {
		t.Errorf("150-char word should be UNK, got %d tokens", len(got))
	}
}

func TestEncodeWrapsAndTruncates(t *testing.T) {
	tok := New()
	ids := tok.Encode("hello world", 0)
	dec := tok.Decode(ids)
	if dec[0] != ClsToken || dec[len(dec)-1] != SepToken {
		t.Errorf("encode should wrap in CLS/SEP, got %v", dec)
	}
	// Truncation preserves the trailing SEP.
	long := strings.Repeat("data news today ", 100)
	capped := tok.Encode(long, 32)
	if len(capped) != 32 {
		t.Errorf("truncated length = %d, want 32", len(capped))
	}
	decCap := tok.Decode(capped)
	if decCap[31] != SepToken {
		t.Errorf("truncated sequence must end with SEP, got %q", decCap[31])
	}
}

func TestSequenceLengthMatchesEncode(t *testing.T) {
	tok := New()
	texts := []string{"", "hi", "the quick brown fox jumps", "OMG!!! Check this out @user #tag"}
	for _, s := range texts {
		if got, want := tok.SequenceLength(s), len(tok.Encode(s, 0)); got != want {
			t.Errorf("SequenceLength(%q) = %d, want %d", s, got, want)
		}
	}
	if tok.SequenceLength("") != 2 {
		t.Errorf("empty text should encode to [CLS][SEP], length 2")
	}
}

func TestPad(t *testing.T) {
	tok := New()
	ids := tok.Encode("hello", 0)
	padded := tok.Pad(ids, 16)
	if len(padded) != 16 {
		t.Fatalf("padded length = %d, want 16", len(padded))
	}
	for i := len(ids); i < 16; i++ {
		if padded[i] != tok.PadID() {
			t.Fatalf("position %d = %d, want PAD", i, padded[i])
		}
	}
	// Already long enough: unchanged.
	same := tok.Pad(ids, len(ids)-1)
	if len(same) != len(ids) {
		t.Error("over-length input should be returned unchanged")
	}
}

func TestDecodeOutOfRange(t *testing.T) {
	tok := New()
	got := tok.Decode([]int{-1, 1 << 20})
	if got[0] != UnkToken || got[1] != UnkToken {
		t.Errorf("out-of-range ids should decode to UNK, got %v", got)
	}
}

func TestPunctuationSplitting(t *testing.T) {
	tok := New()
	got := tok.Tokenize("hi,there!")
	// Punctuation becomes its own token.
	found := 0
	for _, tk := range got {
		if tk == "," || tk == "!" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("expected , and ! as separate tokens, got %v", got)
	}
}

func TestTokenizeNeverPanicsQuick(t *testing.T) {
	tok := New()
	f := func(s string) bool {
		ids := tok.Encode(s, 128)
		return len(ids) >= 2 && len(ids) <= 128
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripKnownTokens(t *testing.T) {
	tok := New()
	ids := tok.Encode("the data team", 0)
	dec := tok.Decode(ids)
	want := []string{ClsToken, "the", "data", "team", SepToken}
	if len(dec) != len(want) {
		t.Fatalf("decode = %v, want %v", dec, want)
	}
	for i := range want {
		if dec[i] != want[i] {
			t.Fatalf("decode = %v, want %v", dec, want)
		}
	}
}

func TestVocabRoundTrip(t *testing.T) {
	orig := New()
	var buf strings.Builder
	if err := orig.SaveVocab(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadVocab(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.VocabSize() != orig.VocabSize() {
		t.Fatalf("vocab size %d, want %d", loaded.VocabSize(), orig.VocabSize())
	}
	// Identical tokenization behaviour.
	for _, text := range []string{"the data team", "OMG!!! unaffordable things", ""} {
		a := orig.Encode(text, 64)
		b := loaded.Encode(text, 64)
		if len(a) != len(b) {
			t.Fatalf("encode length mismatch for %q", text)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("encode mismatch for %q at %d", text, i)
			}
		}
	}
}

func TestLoadVocabErrors(t *testing.T) {
	if _, err := LoadVocab(strings.NewReader("")); err == nil {
		t.Error("empty stream should fail")
	}
	if _, err := LoadVocab(strings.NewReader("[PAD]\n\n[UNK]")); err == nil {
		t.Error("blank line should fail")
	}
	if _, err := LoadVocab(strings.NewReader("just\nsome\ntokens")); err == nil {
		t.Error("missing specials should fail")
	}
}

func TestLoadVocabHandlesCRLF(t *testing.T) {
	in := "[PAD]\r\n[UNK]\r\n[CLS]\r\n[SEP]\r\nhello\r\n"
	tok, err := LoadVocab(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tok.VocabSize() != 5 {
		t.Errorf("vocab size = %d, want 5", tok.VocabSize())
	}
	got := tok.Tokenize("hello")
	if len(got) != 1 || got[0] != "hello" {
		t.Errorf("tokenize = %v", got)
	}
}

// benchText is representative request text: mixed known words, subword
// splits, punctuation and casing.
var benchText = strings.Repeat(
	"The quick brown fox jumps over the lazy dog, affable and unbelievable! ", 8)

func BenchmarkTokenize(b *testing.B) {
	tok := New()
	b.ReportAllocs()
	b.SetBytes(int64(len(benchText)))
	for i := 0; i < b.N; i++ {
		_ = tok.Tokenize(benchText)
	}
}

func BenchmarkEncode(b *testing.B) {
	tok := New()
	b.ReportAllocs()
	b.SetBytes(int64(len(benchText)))
	for i := 0; i < b.N; i++ {
		_ = tok.Encode(benchText, 0)
	}
}

func BenchmarkSequenceLength(b *testing.B) {
	tok := New()
	b.ReportAllocs()
	b.SetBytes(int64(len(benchText)))
	for i := 0; i < b.N; i++ {
		_ = tok.SequenceLength(benchText)
	}
}

// BenchmarkEncodeParallel exercises the pooled scratch path the way the
// HTTP front end does: many goroutines encoding concurrently.
func BenchmarkEncodeParallel(b *testing.B) {
	tok := New()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = tok.Encode(benchText, 0)
		}
	})
}
