package tokenizer

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// SaveVocab writes the vocabulary one token per line in id order — the
// same format BERT vocab.txt files use, so a tokenizer round-trips
// through standard tooling.
func (t *Tokenizer) SaveVocab(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, tok := range t.ids {
		if _, err := fmt.Fprintln(bw, tok); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadVocab builds a tokenizer from a one-token-per-line vocabulary
// stream (BERT vocab.txt format). Blank lines are rejected; the special
// tokens must be present.
func LoadVocab(r io.Reader) (*Tokenizer, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var vocab []string
	line := 0
	for sc.Scan() {
		line++
		tok := strings.TrimRight(sc.Text(), "\r")
		if tok == "" {
			return nil, fmt.Errorf("tokenizer: blank vocabulary entry at line %d", line)
		}
		vocab = append(vocab, tok)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tokenizer: reading vocabulary: %w", err)
	}
	return NewFromVocab(vocab)
}
