// Package tokenizer implements a greedy longest-match WordPiece tokenizer
// in the style of BERT's, with a compact built-in vocabulary. The paper
// excludes tokenization from its latency accounting (modern tokenizers
// process gigabytes per second, section 5); this package exists so the
// serving path — text in, sequence length out, dispatch by length — is
// end-to-end real in the examples and the HTTP front end.
package tokenizer

import (
	"fmt"
	"sync"
	"unicode"
	"unicode/utf8"
)

// Special token names.
const (
	PadToken = "[PAD]"
	UnkToken = "[UNK]"
	ClsToken = "[CLS]"
	SepToken = "[SEP]"
)

// Tokenizer splits text into WordPiece tokens and maps them to vocabulary
// ids. It is safe for concurrent use after construction.
type Tokenizer struct {
	vocab map[string]int
	ids   []string
	pad   int
	unk   int
	cls   int
	sep   int
	// maxWordLen caps per-word matching work, as in BERT's reference
	// implementation (longer words become [UNK]).
	maxWordLen int
}

// NewFromVocab builds a tokenizer from an explicit vocabulary. The
// vocabulary must contain the four special tokens and no duplicates;
// continuation pieces are spelled with the "##" prefix.
func NewFromVocab(vocab []string) (*Tokenizer, error) {
	if len(vocab) == 0 {
		return nil, fmt.Errorf("tokenizer: empty vocabulary")
	}
	t := &Tokenizer{
		vocab:      make(map[string]int, len(vocab)),
		ids:        make([]string, len(vocab)),
		maxWordLen: 100,
	}
	for i, tok := range vocab {
		if tok == "" {
			return nil, fmt.Errorf("tokenizer: empty token at index %d", i)
		}
		if _, dup := t.vocab[tok]; dup {
			return nil, fmt.Errorf("tokenizer: duplicate token %q", tok)
		}
		t.vocab[tok] = i
		t.ids[i] = tok
	}
	var ok bool
	if t.pad, ok = t.vocab[PadToken]; !ok {
		return nil, fmt.Errorf("tokenizer: vocabulary missing %s", PadToken)
	}
	if t.unk, ok = t.vocab[UnkToken]; !ok {
		return nil, fmt.Errorf("tokenizer: vocabulary missing %s", UnkToken)
	}
	if t.cls, ok = t.vocab[ClsToken]; !ok {
		return nil, fmt.Errorf("tokenizer: vocabulary missing %s", ClsToken)
	}
	if t.sep, ok = t.vocab[SepToken]; !ok {
		return nil, fmt.Errorf("tokenizer: vocabulary missing %s", SepToken)
	}
	return t, nil
}

// New returns a tokenizer over the built-in vocabulary.
func New() *Tokenizer {
	t, err := NewFromVocab(builtinVocab())
	if err != nil {
		panic(err) // the built-in vocabulary is a compile-time constant
	}
	return t
}

// VocabSize returns the vocabulary size.
func (t *Tokenizer) VocabSize() int { return len(t.ids) }

// PadID returns the [PAD] id.
func (t *Tokenizer) PadID() int { return t.pad }

// scratch holds per-call working buffers so the hot tokenize/encode path
// allocates nothing beyond its output slice. Pooled because tokenization
// runs on every request goroutine in the front end.
type scratch struct {
	word     []rune // current basic token, lowercased
	buf      []byte // "##" + utf8(word): the matching arena
	offs     []int  // buf offset of each rune in word, plus end sentinel
	pieceIDs []int  // vocabulary ids of the current word's pieces
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// Tokenize splits text into WordPiece tokens: lowercase basic
// (whitespace + punctuation) tokenization followed by greedy
// longest-match subword splitting.
func (t *Tokenizer) Tokenize(text string) []string {
	sc := scratchPool.Get().(*scratch)
	out := make([]string, 0, len(text)/5+4)
	t.eachWord(text, sc, func() {
		if t.matchWord(sc) {
			for _, id := range sc.pieceIDs {
				out = append(out, t.ids[id]) // canonical spelling, no alloc
			}
		} else {
			out = append(out, UnkToken)
		}
	})
	scratchPool.Put(sc)
	return out
}

// eachWord performs basic tokenization — lowercase, split on whitespace,
// punctuation and symbols as standalone single-rune words — accumulating
// each word into sc.word and invoking flush for it. Unlike a
// Builder+Fields pass it never copies the text.
func (t *Tokenizer) eachWord(text string, sc *scratch, flush func()) {
	sc.word = sc.word[:0]
	for _, r := range text {
		// ASCII fast path dodges the unicode range tables that dominate
		// the per-rune cost on typical English input.
		if r < utf8.RuneSelf {
			switch {
			case r == ' ' || r == '\t' || r == '\n' || r == '\r' ||
				r == '\v' || r == '\f':
				if len(sc.word) > 0 {
					flush()
					sc.word = sc.word[:0]
				}
			case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
				sc.word = append(sc.word, r)
			case r >= 'A' && r <= 'Z':
				sc.word = append(sc.word, r+('a'-'A'))
			default: // ASCII punctuation and symbols
				if len(sc.word) > 0 {
					flush()
				}
				sc.word = append(sc.word[:0], r)
				flush()
				sc.word = sc.word[:0]
			}
			continue
		}
		switch {
		case unicode.IsSpace(r):
			if len(sc.word) > 0 {
				flush()
				sc.word = sc.word[:0]
			}
		case unicode.IsPunct(r) || unicode.IsSymbol(r):
			if len(sc.word) > 0 {
				flush()
			}
			sc.word = append(sc.word[:0], unicode.ToLower(r))
			flush()
			sc.word = sc.word[:0]
		default:
			sc.word = append(sc.word, unicode.ToLower(r))
		}
	}
	if len(sc.word) > 0 {
		flush()
		sc.word = sc.word[:0]
	}
}

// matchWord greedily splits sc.word into vocabulary pieces, filling
// sc.pieceIDs. It reports false when any span is unmatchable or the word
// exceeds maxWordLen — the callers emit a single [UNK] then.
//
// The candidate substrings are carved from one reused byte arena laid out
// as "##" + utf8(word). A span starting at rune i with the continuation
// prefix is buf[offs[i]-2 : offs[j]] after stomping the two bytes before
// offs[i] with '#' — safe because matching only moves forward, so those
// bytes (tail of the already-consumed prefix, or the seed "##" itself)
// are never read again. Map lookups use the vocab[string(bytes)] form the
// compiler compiles without a string allocation.
func (t *Tokenizer) matchWord(sc *scratch) bool {
	sc.buf = append(sc.buf[:0], '#', '#')
	sc.offs = sc.offs[:0]
	for _, r := range sc.word {
		sc.offs = append(sc.offs, len(sc.buf))
		sc.buf = utf8.AppendRune(sc.buf, r)
	}
	sc.offs = append(sc.offs, len(sc.buf))
	if len(sc.buf)-2 > t.maxWordLen {
		return false
	}
	sc.pieceIDs = sc.pieceIDs[:0]
	n := len(sc.word)
	start := 0
	for start < n {
		found := -1
		for end := n; end > start; end-- {
			var key []byte
			if start == 0 {
				key = sc.buf[2:sc.offs[end]]
			} else {
				sc.buf[sc.offs[start]-2] = '#'
				sc.buf[sc.offs[start]-1] = '#'
				key = sc.buf[sc.offs[start]-2 : sc.offs[end]]
			}
			if id, ok := t.vocab[string(key)]; ok {
				found = id
				start = end
				break
			}
		}
		if found < 0 {
			return false // any unmatchable span voids the word
		}
		sc.pieceIDs = append(sc.pieceIDs, found)
	}
	return true
}

// Encode tokenizes text and maps it to ids wrapped in [CLS] ... [SEP],
// truncating to maxLen total ids (maxLen <= 0 disables truncation; the
// minimum useful maxLen is 2). The returned length is the model's input
// sequence length — what Arlo dispatches on. It goes straight from text
// to ids without materializing the intermediate token strings.
func (t *Tokenizer) Encode(text string, maxLen int) []int {
	sc := scratchPool.Get().(*scratch)
	ids := make([]int, 0, len(text)/5+6)
	ids = append(ids, t.cls)
	t.eachWord(text, sc, func() {
		if t.matchWord(sc) {
			ids = append(ids, sc.pieceIDs...)
		} else {
			ids = append(ids, t.unk)
		}
	})
	scratchPool.Put(sc)
	ids = append(ids, t.sep)
	if maxLen > 1 && len(ids) > maxLen {
		ids = ids[:maxLen-1]
		ids = append(ids, t.sep)
	}
	return ids
}

// SequenceLength returns the encoded length of text without truncation —
// the request length Arlo's schedulers consume. It counts pieces without
// building the id slice, so the dispatch path's length probe is
// allocation-free.
func (t *Tokenizer) SequenceLength(text string) int {
	sc := scratchPool.Get().(*scratch)
	n := 2 // [CLS] and [SEP]
	t.eachWord(text, sc, func() {
		if t.matchWord(sc) {
			n += len(sc.pieceIDs)
		} else {
			n++
		}
	})
	scratchPool.Put(sc)
	return n
}

// Pad extends ids with [PAD] up to maxLen — what a static-shape runtime
// requires of its inputs (section 2.2, uniform zero-padding).
func (t *Tokenizer) Pad(ids []int, maxLen int) []int {
	if len(ids) >= maxLen {
		return ids
	}
	out := make([]int, maxLen)
	copy(out, ids)
	for i := len(ids); i < maxLen; i++ {
		out[i] = t.pad
	}
	return out
}

// Decode maps ids back to their token strings ([UNK] for out-of-range).
func (t *Tokenizer) Decode(ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		if id < 0 || id >= len(t.ids) {
			out[i] = UnkToken
			continue
		}
		out[i] = t.ids[id]
	}
	return out
}
