// Package tokenizer implements a greedy longest-match WordPiece tokenizer
// in the style of BERT's, with a compact built-in vocabulary. The paper
// excludes tokenization from its latency accounting (modern tokenizers
// process gigabytes per second, section 5); this package exists so the
// serving path — text in, sequence length out, dispatch by length — is
// end-to-end real in the examples and the HTTP front end.
package tokenizer

import (
	"fmt"
	"strings"
	"unicode"
)

// Special token names.
const (
	PadToken = "[PAD]"
	UnkToken = "[UNK]"
	ClsToken = "[CLS]"
	SepToken = "[SEP]"
)

// Tokenizer splits text into WordPiece tokens and maps them to vocabulary
// ids. It is safe for concurrent use after construction.
type Tokenizer struct {
	vocab map[string]int
	ids   []string
	pad   int
	unk   int
	cls   int
	sep   int
	// maxWordLen caps per-word matching work, as in BERT's reference
	// implementation (longer words become [UNK]).
	maxWordLen int
}

// NewFromVocab builds a tokenizer from an explicit vocabulary. The
// vocabulary must contain the four special tokens and no duplicates;
// continuation pieces are spelled with the "##" prefix.
func NewFromVocab(vocab []string) (*Tokenizer, error) {
	if len(vocab) == 0 {
		return nil, fmt.Errorf("tokenizer: empty vocabulary")
	}
	t := &Tokenizer{
		vocab:      make(map[string]int, len(vocab)),
		ids:        make([]string, len(vocab)),
		maxWordLen: 100,
	}
	for i, tok := range vocab {
		if tok == "" {
			return nil, fmt.Errorf("tokenizer: empty token at index %d", i)
		}
		if _, dup := t.vocab[tok]; dup {
			return nil, fmt.Errorf("tokenizer: duplicate token %q", tok)
		}
		t.vocab[tok] = i
		t.ids[i] = tok
	}
	var ok bool
	if t.pad, ok = t.vocab[PadToken]; !ok {
		return nil, fmt.Errorf("tokenizer: vocabulary missing %s", PadToken)
	}
	if t.unk, ok = t.vocab[UnkToken]; !ok {
		return nil, fmt.Errorf("tokenizer: vocabulary missing %s", UnkToken)
	}
	if t.cls, ok = t.vocab[ClsToken]; !ok {
		return nil, fmt.Errorf("tokenizer: vocabulary missing %s", ClsToken)
	}
	if t.sep, ok = t.vocab[SepToken]; !ok {
		return nil, fmt.Errorf("tokenizer: vocabulary missing %s", SepToken)
	}
	return t, nil
}

// New returns a tokenizer over the built-in vocabulary.
func New() *Tokenizer {
	t, err := NewFromVocab(builtinVocab())
	if err != nil {
		panic(err) // the built-in vocabulary is a compile-time constant
	}
	return t
}

// VocabSize returns the vocabulary size.
func (t *Tokenizer) VocabSize() int { return len(t.ids) }

// PadID returns the [PAD] id.
func (t *Tokenizer) PadID() int { return t.pad }

// Tokenize splits text into WordPiece tokens: lowercase basic
// (whitespace + punctuation) tokenization followed by greedy
// longest-match subword splitting.
func (t *Tokenizer) Tokenize(text string) []string {
	words := basicTokenize(text)
	out := make([]string, 0, len(words)+8)
	for _, w := range words {
		out = append(out, t.wordPiece(w)...)
	}
	return out
}

// wordPiece splits one lowercase word into vocabulary pieces, or [UNK].
func (t *Tokenizer) wordPiece(word string) []string {
	if len(word) > t.maxWordLen {
		return []string{UnkToken}
	}
	var pieces []string
	runes := []rune(word)
	start := 0
	for start < len(runes) {
		end := len(runes)
		var match string
		for end > start {
			sub := string(runes[start:end])
			if start > 0 {
				sub = "##" + sub
			}
			if _, ok := t.vocab[sub]; ok {
				match = sub
				break
			}
			end--
		}
		if match == "" {
			return []string{UnkToken} // any unmatchable span voids the word
		}
		pieces = append(pieces, match)
		start = end
	}
	return pieces
}

// Encode tokenizes text and maps it to ids wrapped in [CLS] ... [SEP],
// truncating to maxLen total ids (maxLen <= 0 disables truncation; the
// minimum useful maxLen is 2). The returned length is the model's input
// sequence length — what Arlo dispatches on.
func (t *Tokenizer) Encode(text string, maxLen int) []int {
	toks := t.Tokenize(text)
	ids := make([]int, 0, len(toks)+2)
	ids = append(ids, t.cls)
	for _, tok := range toks {
		id, ok := t.vocab[tok]
		if !ok {
			id = t.unk
		}
		ids = append(ids, id)
	}
	ids = append(ids, t.sep)
	if maxLen > 1 && len(ids) > maxLen {
		ids = ids[:maxLen-1]
		ids = append(ids, t.sep)
	}
	return ids
}

// SequenceLength returns the encoded length of text without truncation —
// the request length Arlo's schedulers consume.
func (t *Tokenizer) SequenceLength(text string) int {
	return len(t.Encode(text, 0))
}

// Pad extends ids with [PAD] up to maxLen — what a static-shape runtime
// requires of its inputs (section 2.2, uniform zero-padding).
func (t *Tokenizer) Pad(ids []int, maxLen int) []int {
	if len(ids) >= maxLen {
		return ids
	}
	out := make([]int, maxLen)
	copy(out, ids)
	for i := len(ids); i < maxLen; i++ {
		out[i] = t.pad
	}
	return out
}

// Decode maps ids back to their token strings ([UNK] for out-of-range).
func (t *Tokenizer) Decode(ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		if id < 0 || id >= len(t.ids) {
			out[i] = UnkToken
			continue
		}
		out[i] = t.ids[id]
	}
	return out
}

// basicTokenize lowercases, strips accents-free punctuation into separate
// tokens, and splits on whitespace.
func basicTokenize(text string) []string {
	var b strings.Builder
	b.Grow(len(text) + 16)
	for _, r := range text {
		switch {
		case unicode.IsSpace(r):
			b.WriteRune(' ')
		case unicode.IsPunct(r) || unicode.IsSymbol(r):
			b.WriteRune(' ')
			b.WriteRune(unicode.ToLower(r))
			b.WriteRune(' ')
		default:
			b.WriteRune(unicode.ToLower(r))
		}
	}
	return strings.Fields(b.String())
}
