package tokenizer

// builtinVocab assembles the compact default vocabulary: special tokens,
// single characters (so every ASCII word is always tokenizable), common
// English words, and frequent subword suffixes. Roughly BERT-flavoured,
// ~600 entries — small enough to live in source, rich enough that typical
// English text tokenizes to sensible lengths.
func builtinVocab() []string {
	vocab := []string{PadToken, UnkToken, ClsToken, SepToken}
	// Single characters: letters, digits, common punctuation — both as
	// word-initial pieces and "##" continuations.
	chars := "abcdefghijklmnopqrstuvwxyz0123456789"
	for _, c := range chars {
		vocab = append(vocab, string(c), "##"+string(c))
	}
	for _, p := range []string{".", ",", "!", "?", "'", "\"", "-", ":", ";", "(", ")", "/", "@", "#", "&", "%", "$", "+", "=", "*", "_", "~", "<", ">", "[", "]", "{", "}", "|", "\\", "^", "`"} {
		vocab = append(vocab, p)
	}
	words := []string{
		"the", "of", "and", "a", "to", "in", "is", "was", "he", "for",
		"it", "with", "as", "his", "on", "be", "at", "by", "i", "this",
		"had", "not", "are", "but", "from", "or", "have", "an", "they",
		"which", "one", "you", "were", "her", "all", "she", "there",
		"would", "their", "we", "him", "been", "has", "when", "who",
		"will", "more", "no", "if", "out", "so", "said", "what", "up",
		"its", "about", "into", "than", "them", "can", "only", "other",
		"new", "some", "could", "time", "these", "two", "may", "then",
		"do", "first", "any", "my", "now", "such", "like", "our", "over",
		"man", "me", "even", "most", "made", "after", "also", "did",
		"many", "before", "must", "through", "back", "years", "where",
		"much", "your", "way", "well", "down", "should", "because",
		"each", "just", "those", "people", "how", "too", "little",
		"state", "good", "very", "make", "world", "still", "own", "see",
		"men", "work", "long", "get", "here", "between", "both", "life",
		"being", "under", "never", "day", "same", "another", "know",
		"while", "last", "might", "us", "great", "old", "year", "off",
		"come", "since", "against", "go", "came", "right", "used",
		"take", "three", "himself", "few", "house", "use", "during",
		"without", "again", "place", "american", "around", "however",
		"home", "small", "found", "mrs", "thought", "went", "say",
		"part", "once", "general", "high", "upon", "school", "every",
		"don", "does", "got", "united", "left", "number", "course",
		"war", "until", "always", "away", "something", "fact", "though",
		"water", "less", "public", "put", "think", "almost", "hand",
		"enough", "far", "took", "head", "yet", "government", "system",
		"better", "set", "told", "nothing", "night", "end", "why",
		"called", "didn", "eyes", "find", "going", "look", "asked",
		"later", "knew", "point", "next", "program", "city", "business",
		"give", "group", "toward", "young", "days", "let", "room",
		"word", "things", "want", "face", "second", "need", "model",
		"data", "news", "today", "love", "really", "happy", "twitter",
		"tweet", "post", "follow", "like", "share", "best", "thanks",
		"lol", "omg", "haha", "yes", "good", "morning", "check",
		"please", "watch", "video", "live", "game", "team", "win",
		"play", "song", "music", "free", "click", "link", "read",
		"story", "photo", "media", "social", "phone", "online",
	}
	seen := map[string]bool{}
	for _, v := range vocab {
		seen[v] = true
	}
	for _, w := range words {
		if !seen[w] {
			seen[w] = true
			vocab = append(vocab, w)
		}
	}
	suffixes := []string{
		"##s", "##ed", "##ing", "##er", "##est", "##ly", "##tion",
		"##ment", "##ness", "##able", "##al", "##ic", "##ous", "##ive",
		"##ful", "##less", "##ity", "##y", "##es", "##en", "##an",
		"##on", "##in", "##at", "##or", "##ar", "##it", "##is", "##le",
		"##re", "##th", "##nd", "##st", "##nt", "##ch", "##sh", "##ck",
		"##ll", "##ss", "##ee", "##oo", "##ion", "##ers", "##ings",
	}
	for _, s := range suffixes {
		if !seen[s] {
			seen[s] = true
			vocab = append(vocab, s)
		}
	}
	return vocab
}
