package metrics

import "time"

// TimeWeighted tracks a step function of time (such as the number of
// provisioned GPUs under auto-scaling) and computes its time-weighted
// average — the headline statistic of Fig. 8 ("time-weighted GPU number of
// 5.49"). Values change at Set calls and hold until the next change.
type TimeWeighted struct {
	started  bool
	start    time.Duration // virtual timestamp of the first observation
	last     time.Duration // virtual timestamp of the latest Set
	lastVal  float64
	weighted float64 // integral of value dt up to last
	points   []TimePoint
}

// TimePoint records one change of the tracked value.
type TimePoint struct {
	At    time.Duration
	Value float64
}

// Set records that the tracked value changed to v at virtual time at.
// Calls must have non-decreasing timestamps; out-of-order calls are
// clamped to the latest timestamp seen.
func (w *TimeWeighted) Set(at time.Duration, v float64) {
	if !w.started {
		w.started = true
		w.start, w.last, w.lastVal = at, at, v
		w.points = append(w.points, TimePoint{at, v})
		return
	}
	if at < w.last {
		at = w.last
	}
	w.weighted += w.lastVal * float64(at-w.last)
	w.last = at
	if v != w.lastVal {
		w.points = append(w.points, TimePoint{at, v})
	}
	w.lastVal = v
}

// Average returns the time-weighted average of the value over [start, end].
// end must be at or after the last Set; earlier values are clamped.
func (w *TimeWeighted) Average(end time.Duration) float64 {
	if !w.started {
		return 0
	}
	if end < w.last {
		end = w.last
	}
	total := w.weighted + w.lastVal*float64(end-w.last)
	span := float64(end - w.start)
	if span <= 0 {
		return w.lastVal
	}
	return total / span
}

// Last returns the most recent value, or 0 before any Set.
func (w *TimeWeighted) Last() float64 { return w.lastVal }

// Series returns the recorded change points (value transitions only),
// suitable for plotting the Fig. 8 / Fig. 12 time series.
func (w *TimeWeighted) Series() []TimePoint {
	out := make([]TimePoint, len(w.points))
	copy(out, w.points)
	return out
}
