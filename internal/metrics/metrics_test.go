package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestRecorderEmpty(t *testing.T) {
	var r Recorder
	if r.Count() != 0 || r.Mean() != 0 || r.P98() != 0 || r.Max() != 0 || r.Min() != 0 {
		t.Error("empty recorder should report zeros")
	}
	if c, f := r.SLOViolations(time.Second); c != 0 || f != 0 {
		t.Error("empty recorder should report no violations")
	}
	if r.CDF(10) != nil {
		t.Error("empty recorder CDF should be nil")
	}
}

func TestRecorderBasicStats(t *testing.T) {
	r := NewRecorder(4)
	for _, ms := range []int{40, 10, 30, 20} {
		r.Record(time.Duration(ms) * time.Millisecond)
	}
	if got := r.Mean(); got != 25*time.Millisecond {
		t.Errorf("mean = %v, want 25ms", got)
	}
	if got := r.Min(); got != 10*time.Millisecond {
		t.Errorf("min = %v, want 10ms", got)
	}
	if got := r.Max(); got != 40*time.Millisecond {
		t.Errorf("max = %v, want 40ms", got)
	}
	if got := r.Percentile(0.5); got != 20*time.Millisecond {
		t.Errorf("p50 = %v, want 20ms (nearest rank)", got)
	}
	if got := r.Percentile(0); got != 10*time.Millisecond {
		t.Errorf("p0 = %v, want min", got)
	}
	if got := r.Percentile(1); got != 40*time.Millisecond {
		t.Errorf("p100 = %v, want max", got)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	r := NewRecorder(100)
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if got := r.P98(); got != 98*time.Millisecond {
		t.Errorf("p98 of 1..100ms = %v, want 98ms", got)
	}
	if got := r.Percentile(0.50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", got)
	}
}

func TestSLOViolations(t *testing.T) {
	r := NewRecorder(10)
	for i := 1; i <= 10; i++ {
		r.Record(time.Duration(i*10) * time.Millisecond)
	}
	c, f := r.SLOViolations(70 * time.Millisecond)
	if c != 3 {
		t.Errorf("violations = %d, want 3 (80,90,100ms)", c)
	}
	if f != 0.3 {
		t.Errorf("fraction = %v, want 0.3", f)
	}
	// Boundary: exactly-at-SLO is not a violation.
	c, _ = r.SLOViolations(100 * time.Millisecond)
	if c != 0 {
		t.Errorf("at-SLO sample counted as violation: %d", c)
	}
}

func TestRecordInterleavedWithReads(t *testing.T) {
	var r Recorder
	r.Record(10 * time.Millisecond)
	_ = r.Max() // forces a sort
	r.Record(5 * time.Millisecond)
	if got := r.Min(); got != 5*time.Millisecond {
		t.Errorf("min after interleaved record = %v, want 5ms", got)
	}
}

func TestCDFProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := NewRecorder(1000)
	for i := 0; i < 1000; i++ {
		r.Record(time.Duration(rng.Intn(1e6)) * time.Microsecond)
	}
	for _, maxPts := range []int{1, 2, 17, 100, 1000, 0, 5000} {
		cdf := r.CDF(maxPts)
		if len(cdf) == 0 {
			t.Fatalf("maxPoints=%d produced empty CDF", maxPts)
		}
		if want := maxPts; want > 0 && want <= 1000 && len(cdf) != want {
			t.Errorf("maxPoints=%d: got %d points", maxPts, len(cdf))
		}
		last := cdf[len(cdf)-1]
		if last.F != 1 {
			t.Errorf("maxPoints=%d: CDF must end at F=1, got %v", maxPts, last.F)
		}
		if last.Latency != r.Max() {
			t.Errorf("maxPoints=%d: CDF must end at the max latency", maxPts)
		}
		if !sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].F < cdf[j].F }) {
			// Equal F values can only arise from duplicate indices, which
			// the proportional spacing avoids for maxPoints <= n.
			for i := 1; i < len(cdf); i++ {
				if cdf[i].F < cdf[i-1].F || cdf[i].Latency < cdf[i-1].Latency {
					t.Fatalf("maxPoints=%d: CDF not monotone at %d", maxPts, i)
				}
			}
		}
	}
}

func TestRecorderQuickMeanBounds(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var r Recorder
		for _, v := range raw {
			r.Record(time.Duration(v % 1e9))
		}
		m := r.Mean()
		return m >= r.Min() && m <= r.Max() && r.P98() <= r.Max() && r.P98() >= r.Percentile(0.5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRecorderReset(t *testing.T) {
	var r Recorder
	r.Record(time.Second)
	r.Reset()
	if r.Count() != 0 || r.Mean() != 0 {
		t.Error("reset should clear samples")
	}
	r.Record(2 * time.Second)
	if r.Mean() != 2*time.Second {
		t.Error("recorder unusable after reset")
	}
}

func TestSnapshotIsSortedCopy(t *testing.T) {
	var r Recorder
	r.Record(3)
	r.Record(1)
	r.Record(2)
	s := r.Snapshot()
	if len(s) != 3 || s[0] != 1 || s[1] != 2 || s[2] != 3 {
		t.Errorf("snapshot = %v, want sorted [1 2 3]", s)
	}
	s[0] = 99
	if r.Min() != 1 {
		t.Error("mutating snapshot must not affect recorder")
	}
}

func TestSummarize(t *testing.T) {
	var r Recorder
	for i := 1; i <= 50; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	s := r.Summarize(40 * time.Millisecond)
	if s.Count != 50 || s.SLOViolations != 10 {
		t.Errorf("summary = %+v, want count 50, 10 violations", s)
	}
	if s.String() == "" {
		t.Error("summary string should be non-empty")
	}
	noSLO := r.Summarize(0)
	if noSLO.SLOViolations != 0 || noSLO.SLOFraction != 0 {
		t.Error("slo=0 should disable violation accounting")
	}
}

func TestTimeWeightedAverage(t *testing.T) {
	var w TimeWeighted
	if w.Average(time.Minute) != 0 {
		t.Error("empty series average should be 0")
	}
	w.Set(0, 5)              // 5 GPUs for 10s
	w.Set(10*time.Second, 8) // 8 GPUs for 20s
	w.Set(30*time.Second, 6) // 6 GPUs for 10s
	got := w.Average(40 * time.Second)
	want := (5.0*10 + 8.0*20 + 6.0*10) / 40
	if got != want {
		t.Errorf("time-weighted avg = %v, want %v", got, want)
	}
	if w.Last() != 6 {
		t.Errorf("last = %v, want 6", w.Last())
	}
}

func TestTimeWeightedClampsOutOfOrder(t *testing.T) {
	var w TimeWeighted
	w.Set(10*time.Second, 2)
	w.Set(5*time.Second, 4) // out of order: treated as at 10s
	if got := w.Average(20 * time.Second); got != 4 {
		t.Errorf("avg = %v, want 4 (value 2 held for zero time)", got)
	}
}

func TestTimeWeightedSeriesDeduplicates(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 3)
	w.Set(time.Second, 3) // no change: no new point
	w.Set(2*time.Second, 4)
	pts := w.Series()
	if len(pts) != 2 {
		t.Fatalf("series has %d points, want 2", len(pts))
	}
	if pts[1].Value != 4 || pts[1].At != 2*time.Second {
		t.Errorf("unexpected second point %+v", pts[1])
	}
	pts[0].Value = 99
	if w.Series()[0].Value == 99 {
		t.Error("Series must return a copy")
	}
}

func TestTimeWeightedAverageBeforeEnd(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 7)
	if got := w.Average(0); got != 7 {
		t.Errorf("zero-span average = %v, want the value itself", got)
	}
}
