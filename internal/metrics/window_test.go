package metrics

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWindowEvictsOldSamples(t *testing.T) {
	w := NewWindow(10 * time.Second)
	base := time.Unix(1000, 0)
	w.RecordAt(base, 100*time.Millisecond)
	w.RecordAt(base.Add(5*time.Second), 200*time.Millisecond)
	w.RecordAt(base.Add(12*time.Second), 300*time.Millisecond)
	// At t=12s the first sample (age 12s) is out; the other two remain.
	if got := w.PercentileAt(base.Add(12*time.Second), 1.0); got != 300*time.Millisecond {
		t.Errorf("max in window = %v, want 300ms", got)
	}
	if got := w.PercentileAt(base.Add(12*time.Second), 0.0); got != 200*time.Millisecond {
		t.Errorf("min in window = %v, want 200ms (100ms evicted)", got)
	}
	// Much later everything is gone.
	if got := w.PercentileAt(base.Add(time.Hour), 0.98); got != 0 {
		t.Errorf("expired window should report 0, got %v", got)
	}
}

func TestWindowPercentile(t *testing.T) {
	w := NewWindow(time.Minute)
	base := time.Unix(2000, 0)
	for i := 1; i <= 100; i++ {
		w.RecordAt(base, time.Duration(i)*time.Millisecond)
	}
	if got := w.PercentileAt(base, 0.98); got != 98*time.Millisecond {
		t.Errorf("p98 = %v, want 98ms", got)
	}
	if got := w.PercentileAt(base, 0.5); got != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", got)
	}
}

func TestWindowDefaultSpan(t *testing.T) {
	w := NewWindow(0)
	if w.span != 10*time.Second {
		t.Errorf("default span = %v, want 10s", w.span)
	}
}

func TestWindowCompaction(t *testing.T) {
	w := newWindowShards(time.Millisecond, 1)
	base := time.Unix(3000, 0)
	// Push far more than the compaction threshold with advancing time so
	// almost everything evicts and the buffers compact.
	for i := 0; i < 20000; i++ {
		w.RecordAt(base.Add(time.Duration(i)*time.Millisecond), time.Duration(i))
	}
	if got := len(w.shards[0].at); got > 10000 {
		t.Errorf("buffers never compacted: %d entries retained", got)
	}
	last := base.Add(19999 * time.Millisecond)
	if got := w.PercentileAt(last, 1.0); got != 19999 {
		t.Errorf("latest sample lost after compaction: %v", got)
	}
}

// TestWindowStripedMerge checks a query merges samples across stripes.
func TestWindowStripedMerge(t *testing.T) {
	w := newWindowShards(time.Minute, 4)
	base := time.Now()
	for i := 1; i <= 100; i++ {
		w.RecordAt(base, time.Duration(i)*time.Millisecond)
	}
	if got := w.Count(); got != 100 {
		t.Errorf("count = %d, want 100 across 4 stripes", got)
	}
	if got := w.PercentileAt(base, 0.98); got != 98*time.Millisecond {
		t.Errorf("p98 = %v, want 98ms", got)
	}
}

// BenchmarkWindowRecordParallel measures the striped Record path under
// full-core contention — the serving hot path's per-request cost.
func BenchmarkWindowRecordParallel(b *testing.B) {
	w := NewWindow(time.Minute)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			w.Record(time.Millisecond)
		}
	})
}

// BenchmarkWindowMixedParallel mixes a querying control loop into the
// recording traffic, the controller-plus-servers pattern.
func BenchmarkWindowMixedParallel(b *testing.B) {
	w := NewWindow(time.Minute)
	b.ReportAllocs()
	var i atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if i.Add(1)%1024 == 0 {
				_ = w.P98()
			} else {
				w.Record(time.Millisecond)
			}
		}
	})
}

func BenchmarkWindowPercentile(b *testing.B) {
	w := NewWindow(time.Minute)
	for i := 0; i < 10000; i++ {
		w.Record(time.Duration(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.P98()
	}
}

func TestWindowConcurrent(t *testing.T) {
	w := NewWindow(time.Minute)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				w.Record(time.Duration(g*1000 + i))
				if i%50 == 0 {
					_ = w.P98()
					_ = w.Count()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := w.Count(); got != 4000 {
		t.Errorf("count = %d, want 4000", got)
	}
}
