package metrics

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Window is a thread-safe sliding-window latency recorder: it keeps only
// the samples recorded within the trailing Span and answers percentile
// queries over them. The online control plane observes "the 98%ile
// latency of recently executed requests" (paper section 4) through one of
// these.
//
// Record is striped across GOMAXPROCS sub-windows so the serving hot
// path never funnels through one mutex; queries lock the shards in
// ascending index order, merge the live samples into a reused scratch
// buffer and sort in place — no per-query allocation in steady state.
type Window struct {
	span   time.Duration
	next   atomic.Uint32 // round-robin shard cursor for Record
	shards []windowShard

	// qmu serializes queries and guards the scratch buffer they reuse.
	qmu     sync.Mutex
	scratch []time.Duration
}

// windowShard is one stripe of samples. Padded so two shards' mutexes
// never share a cache line.
type windowShard struct {
	mu sync.Mutex
	// samples are (recorded-at, latency) pairs in arrival order.
	at   []time.Time
	lat  []time.Duration
	head int // index of the oldest retained sample
	_    [64]byte
}

// NewWindow returns a Window covering the trailing span (default 10 s for
// non-positive values).
func NewWindow(span time.Duration) *Window {
	return newWindowShards(span, runtime.GOMAXPROCS(0))
}

// newWindowShards builds a Window with an explicit stripe count (tests
// pin it to make eviction deterministic).
func newWindowShards(span time.Duration, n int) *Window {
	if span <= 0 {
		span = 10 * time.Second
	}
	if n < 1 {
		n = 1
	}
	return &Window{span: span, shards: make([]windowShard, n)}
}

// Record adds one sample timestamped now.
func (w *Window) Record(lat time.Duration) { w.RecordAt(time.Now(), lat) }

// RecordAt adds one sample with an explicit timestamp (must be
// non-decreasing across calls for eviction to behave).
func (w *Window) RecordAt(at time.Time, lat time.Duration) {
	s := &w.shards[w.next.Add(1)%uint32(len(w.shards))]
	s.mu.Lock()
	s.at = append(s.at, at)
	s.lat = append(s.lat, lat)
	s.evict(at, w.span)
	s.mu.Unlock()
}

// evict drops samples older than the span and compacts occasionally;
// caller holds s.mu.
func (s *windowShard) evict(now time.Time, span time.Duration) {
	cut := now.Add(-span)
	for s.head < len(s.at) && s.at[s.head].Before(cut) {
		s.head++
	}
	if s.head > 1024 && s.head*2 > len(s.at) {
		n := copy(s.at, s.at[s.head:])
		s.at = s.at[:n]
		m := copy(s.lat, s.lat[s.head:])
		s.lat = s.lat[:m]
		s.head = 0
	}
}

// Count returns the number of samples currently inside the window.
func (w *Window) Count() int {
	now := time.Now()
	total := 0
	for i := range w.shards {
		s := &w.shards[i]
		s.mu.Lock()
		s.evict(now, w.span)
		total += len(s.lat) - s.head
		s.mu.Unlock()
	}
	return total
}

// Percentile returns the p-quantile (nearest rank) of the samples inside
// the window as of now, or 0 when the window is empty.
func (w *Window) Percentile(p float64) time.Duration {
	return w.PercentileAt(time.Now(), p)
}

// PercentileAt is Percentile with an explicit evaluation time.
func (w *Window) PercentileAt(now time.Time, p float64) time.Duration {
	w.qmu.Lock()
	defer w.qmu.Unlock()
	merged := w.scratch[:0]
	for i := range w.shards {
		s := &w.shards[i]
		s.mu.Lock()
		s.evict(now, w.span)
		merged = append(merged, s.lat[s.head:]...)
		s.mu.Unlock()
	}
	w.scratch = merged // keep the grown capacity for the next query
	if len(merged) == 0 {
		return 0
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	idx := int(p*float64(len(merged))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(merged) {
		idx = len(merged) - 1
	}
	return merged[idx]
}

// P98 returns the window's 98th percentile.
func (w *Window) P98() time.Duration { return w.Percentile(0.98) }
