package metrics

import (
	"sort"
	"sync"
	"time"
)

// Window is a thread-safe sliding-window latency recorder: it keeps only
// the samples recorded within the trailing Span and answers percentile
// queries over them. The online control plane observes "the 98%ile
// latency of recently executed requests" (paper section 4) through one of
// these.
type Window struct {
	mu   sync.Mutex
	span time.Duration
	// samples are (recorded-at, latency) pairs in arrival order.
	at   []time.Time
	lat  []time.Duration
	head int // index of the oldest retained sample
}

// NewWindow returns a Window covering the trailing span (default 10 s for
// non-positive values).
func NewWindow(span time.Duration) *Window {
	if span <= 0 {
		span = 10 * time.Second
	}
	return &Window{span: span}
}

// Record adds one sample timestamped now.
func (w *Window) Record(lat time.Duration) { w.RecordAt(time.Now(), lat) }

// RecordAt adds one sample with an explicit timestamp (must be
// non-decreasing across calls for eviction to behave).
func (w *Window) RecordAt(at time.Time, lat time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.at = append(w.at, at)
	w.lat = append(w.lat, lat)
	w.evict(at)
}

// evict drops samples older than the span and compacts occasionally.
func (w *Window) evict(now time.Time) {
	cut := now.Add(-w.span)
	for w.head < len(w.at) && w.at[w.head].Before(cut) {
		w.head++
	}
	if w.head > 4096 && w.head*2 > len(w.at) {
		n := copy(w.at, w.at[w.head:])
		w.at = w.at[:n]
		m := copy(w.lat, w.lat[w.head:])
		w.lat = w.lat[:m]
		w.head = 0
	}
}

// Count returns the number of samples currently inside the window.
func (w *Window) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.evict(time.Now())
	return len(w.lat) - w.head
}

// Percentile returns the p-quantile (nearest rank) of the samples inside
// the window as of now, or 0 when the window is empty.
func (w *Window) Percentile(p float64) time.Duration {
	return w.PercentileAt(time.Now(), p)
}

// PercentileAt is Percentile with an explicit evaluation time.
func (w *Window) PercentileAt(now time.Time, p float64) time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.evict(now)
	live := w.lat[w.head:]
	if len(live) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(live))
	copy(sorted, live)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// P98 returns the window's 98th percentile.
func (w *Window) P98() time.Duration { return w.Percentile(0.98) }
