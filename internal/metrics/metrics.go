// Package metrics provides the measurement primitives used across the
// evaluation: latency recorders with mean/percentile/CDF extraction, SLO
// accounting, and time-weighted series (e.g. the time-weighted GPU count of
// Fig. 8). The paper's primary metrics are mean latency and 98th-percentile
// tail latency (section 5, Metrics).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Recorder accumulates per-request latencies and derives summary statistics.
// The zero value is ready to use. Recorder is not safe for concurrent use;
// wrap it (e.g. with a mutex) when recording from multiple goroutines.
type Recorder struct {
	samples []time.Duration
	sorted  bool
	sum     time.Duration
}

// NewRecorder returns a Recorder with capacity pre-allocated for n samples.
func NewRecorder(n int) *Recorder {
	return &Recorder{samples: make([]time.Duration, 0, n)}
}

// Record adds one latency sample.
func (r *Recorder) Record(d time.Duration) {
	r.samples = append(r.samples, d)
	r.sum += d
	r.sorted = false
}

// Count returns the number of recorded samples.
func (r *Recorder) Count() int { return len(r.samples) }

// Mean returns the average latency, or 0 with no samples.
func (r *Recorder) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	return r.sum / time.Duration(len(r.samples))
}

// Percentile returns the p-quantile (0 <= p <= 1) using nearest-rank on the
// sorted samples, or 0 with no samples.
func (r *Recorder) Percentile(p float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.sort()
	if p <= 0 {
		return r.samples[0]
	}
	if p >= 1 {
		return r.samples[len(r.samples)-1]
	}
	idx := int(math.Ceil(p*float64(len(r.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return r.samples[idx]
}

// P98 returns the paper's tail-latency metric, the 98th percentile.
func (r *Recorder) P98() time.Duration { return r.Percentile(0.98) }

// Max returns the largest recorded latency, or 0 with no samples.
func (r *Recorder) Max() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.sort()
	return r.samples[len(r.samples)-1]
}

// Min returns the smallest recorded latency, or 0 with no samples.
func (r *Recorder) Min() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.sort()
	return r.samples[0]
}

// SLOViolations returns how many samples exceed the given objective and the
// violating fraction (0 with no samples).
func (r *Recorder) SLOViolations(slo time.Duration) (count int, fraction float64) {
	if len(r.samples) == 0 {
		return 0, 0
	}
	r.sort()
	// First index strictly above the SLO.
	i := sort.Search(len(r.samples), func(i int) bool { return r.samples[i] > slo })
	count = len(r.samples) - i
	return count, float64(count) / float64(len(r.samples))
}

// CDFPoint is one point of a cumulative distribution: fraction F of samples
// have latency <= Latency.
type CDFPoint struct {
	Latency time.Duration
	F       float64
}

// CDF returns up to maxPoints evenly spaced points of the empirical CDF
// (always including the minimum and maximum). With maxPoints <= 0 every
// sample becomes a point.
func (r *Recorder) CDF(maxPoints int) []CDFPoint {
	n := len(r.samples)
	if n == 0 {
		return nil
	}
	r.sort()
	if maxPoints <= 0 || maxPoints > n {
		maxPoints = n
	}
	out := make([]CDFPoint, 0, maxPoints)
	for k := 0; k < maxPoints; k++ {
		// Sample index positions proportionally, ending at n-1.
		var idx int
		if maxPoints == 1 {
			idx = n - 1
		} else {
			idx = k * (n - 1) / (maxPoints - 1)
		}
		out = append(out, CDFPoint{Latency: r.samples[idx], F: float64(idx+1) / float64(n)})
	}
	return out
}

// Snapshot returns a copy of the sorted samples.
func (r *Recorder) Snapshot() []time.Duration {
	r.sort()
	out := make([]time.Duration, len(r.samples))
	copy(out, r.samples)
	return out
}

// Reset discards all samples, keeping allocated capacity.
func (r *Recorder) Reset() {
	r.samples = r.samples[:0]
	r.sum = 0
	r.sorted = true
}

func (r *Recorder) sort() {
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
}

// Summary bundles the headline statistics of a run.
type Summary struct {
	Count         int
	Mean          time.Duration
	P50           time.Duration
	P98           time.Duration
	Max           time.Duration
	SLO           time.Duration
	SLOViolations int
	SLOFraction   float64
}

// Summarize computes a Summary against the given SLO (0 disables SLO
// accounting).
func (r *Recorder) Summarize(slo time.Duration) Summary {
	s := Summary{
		Count: r.Count(),
		Mean:  r.Mean(),
		P50:   r.Percentile(0.50),
		P98:   r.P98(),
		Max:   r.Max(),
		SLO:   slo,
	}
	if slo > 0 {
		s.SLOViolations, s.SLOFraction = r.SLOViolations(slo)
	}
	return s
}

// String renders the summary on one line, in milliseconds.
func (s Summary) String() string {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	out := fmt.Sprintf("n=%d mean=%.2fms p50=%.2fms p98=%.2fms max=%.2fms",
		s.Count, ms(s.Mean), ms(s.P50), ms(s.P98), ms(s.Max))
	if s.SLO > 0 {
		out += fmt.Sprintf(" sloViol=%d (%.2f%%)", s.SLOViolations, 100*s.SLOFraction)
	}
	return out
}
