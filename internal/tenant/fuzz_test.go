package tenant

import "testing"

// FuzzTenantConfigParse fuzzes the strict config parser: it must never
// panic, and anything it accepts must be internally consistent — every
// record re-validates, ids are unique, and a registry builds from the
// result.
func FuzzTenantConfigParse(f *testing.F) {
	seeds := []string{
		`{"tenants": []}`,
		`{"tenants": [{"id": "a"}]}`,
		`{"tenants": [{"id": "team-a", "slo_class": "interactive", "capacity": 100, "refill_per_sec": 10, "weight": 4}]}`,
		`{"tenants": [{"id": "a"}, {"id": "b", "slo_class": "batch"}]}`,
		`{"tenants": [{"id": "default", "capacity": 50}]}`,
		`{"tenants": [{"id": "a", "burst": 5}]}`,
		`{"tenants": [{"id": "a"}, {"id": "a"}]}`,
		`{"tenants": []} trailing`,
		`{"tenants": [{"id": "", "weight": -1}]}`,
		`{"tenants": [{"id": "a", "capacity": 1e308}]}`,
		`not json at all`,
		``,
		`null`,
		`{"tenants": null}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cfgs, err := ParseConfig(data)
		if err != nil {
			return
		}
		seen := make(map[string]bool, len(cfgs))
		for _, c := range cfgs {
			if verr := c.Validate(); verr != nil {
				t.Fatalf("ParseConfig accepted invalid record %+v: %v", c, verr)
			}
			if seen[c.ID] {
				t.Fatalf("ParseConfig accepted duplicate id %q", c.ID)
			}
			seen[c.ID] = true
		}
		if _, rerr := NewRegistry(cfgs...); rerr != nil {
			t.Fatalf("accepted config does not build a registry: %v", rerr)
		}
	})
}
