package tenant

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// refBucket is the naive reference token bucket the property test checks
// the production implementation against: float tokens, refill on every
// observation, no shortcuts.
type refBucket struct {
	capacity float64
	refill   float64
	tokens   float64
	lastNS   int64
}

func (b *refBucket) admit(nowNS int64, tokens int) bool {
	cost := math.Max(1, float64(tokens))
	if b.capacity <= 0 {
		return true
	}
	if el := nowNS - b.lastNS; el > 0 {
		b.tokens = math.Min(b.capacity, b.tokens+float64(el)*b.refill/1e9)
		b.lastNS = nowNS
	}
	if b.tokens >= cost {
		b.tokens -= cost
		return true
	}
	return false
}

// TestAdmitPropertyVsReference drives admitAt over seeded random
// interleavings of admissions and clock advances and requires the
// decision sequence to match the naive reference bucket exactly, the
// retry hint to stay within [1ms, 1h], and the admission counters to
// balance the decisions.
func TestAdmitPropertyVsReference(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			ID:           "prop",
			Capacity:     float64(rng.Intn(5000)),
			RefillPerSec: float64(rng.Intn(2000)),
			Weight:       1,
		}
		if seed%7 == 0 {
			cfg.Capacity = 0 // unlimited path
		}
		if seed%5 == 0 {
			cfg.RefillPerSec = 0 // never refills: retry hint must clamp to 1h
		}
		reg, err := NewRegistry(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tn := reg.Get("prop")
		// Align the reference clock with the record's configure-time stamp so
		// both buckets see identical elapsed intervals.
		tn.mu.Lock()
		now := tn.lastNS
		tn.mu.Unlock()
		ref := &refBucket{capacity: cfg.Capacity, refill: cfg.RefillPerSec, tokens: cfg.Capacity, lastNS: now}
		admits, rejects := 0, 0
		for step := 0; step < 2000; step++ {
			if rng.Intn(3) == 0 {
				now += rng.Int63n(int64(50 * time.Millisecond))
			}
			cost := rng.Intn(700) - 10 // occasionally <= 0: clamps to 1
			got, retry := tn.admitAt(now, cost)
			want := ref.admit(now, cost)
			if got != want {
				t.Fatalf("seed %d step %d: admitAt(now=%d, cost=%d) = %v, reference says %v",
					seed, step, now, cost, got, want)
			}
			if got {
				admits++
				if retry != 0 {
					t.Fatalf("seed %d step %d: admitted with retry hint %s", seed, step, retry)
				}
			} else {
				rejects++
				if retry < time.Millisecond || retry > time.Hour {
					t.Fatalf("seed %d step %d: retry hint %s outside [1ms, 1h]", seed, step, retry)
				}
				if cfg.RefillPerSec == 0 && retry != time.Hour {
					t.Fatalf("seed %d step %d: zero refill must hint 1h, got %s", seed, step, retry)
				}
			}
		}
		st := tn.Stat()
		if st.Admitted != int64(admits) || st.Rejected != int64(rejects) {
			t.Fatalf("seed %d: counters admitted=%d rejected=%d, decisions were %d/%d",
				seed, st.Admitted, st.Rejected, admits, rejects)
		}
		if cfg.Capacity <= 0 && rejects != 0 {
			t.Fatalf("seed %d: unlimited tenant rejected %d requests", seed, rejects)
		}
	}
}

// TestAdmitBurstAndRefill checks bucket shape directly: a full bucket
// serves exactly capacity/cost requests back-to-back, then refill
// restores budget at the configured rate.
func TestAdmitBurstAndRefill(t *testing.T) {
	reg, err := NewRegistry(Config{ID: "a", Capacity: 1000, RefillPerSec: 100, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	tn := reg.Get("a")
	tn.mu.Lock()
	now := tn.lastNS
	tn.mu.Unlock()
	for i := 0; i < 10; i++ {
		if ok, _ := tn.admitAt(now, 100); !ok {
			t.Fatalf("burst request %d rejected with budget remaining", i)
		}
	}
	ok, retry := tn.admitAt(now, 100)
	if ok {
		t.Fatal("admitted past capacity without refill")
	}
	// 100 tokens at 100 tokens/sec is a 1s horizon.
	if retry < 900*time.Millisecond || retry > 1100*time.Millisecond {
		t.Fatalf("retry hint %s, want ~1s", retry)
	}
	now += int64(time.Second)
	if ok, _ := tn.admitAt(now, 100); !ok {
		t.Fatal("rejected after a full refill interval")
	}
}

func TestRateLimitErrorUnwrap(t *testing.T) {
	err := error(&RateLimitError{Tenant: "x", RetryAfter: 5 * time.Second})
	if !errors.Is(err, ErrRateLimited) {
		t.Fatal("RateLimitError does not unwrap to ErrRateLimited")
	}
	var rl *RateLimitError
	if !errors.As(err, &rl) || rl.RetryAfter != 5*time.Second {
		t.Fatal("errors.As lost the retry hint")
	}
	if !strings.Contains(err.Error(), `"x"`) {
		t.Fatalf("error text %q does not name the tenant", err)
	}
}

func TestParseClass(t *testing.T) {
	cases := []struct {
		in   string
		want Class
		ok   bool
	}{
		{"", Standard, true},
		{"standard", Standard, true},
		{"interactive", Interactive, true},
		{"batch", Batch, true},
		{"Interactive", 0, false},
		{"bulk", 0, false},
	}
	for _, c := range cases {
		got, err := ParseClass(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParseClass(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	for _, c := range []Class{Standard, Interactive, Batch} {
		back, err := ParseClass(c.String())
		if err != nil || back != c {
			t.Errorf("ParseClass(%v.String()) = %v, %v", c, back, err)
		}
	}
}

func TestClassPolicy(t *testing.T) {
	slo := 150 * time.Millisecond
	if d := Interactive.DeadlineDefault(slo); d != slo {
		t.Errorf("interactive deadline default %s, want %s", d, slo)
	}
	if d := Standard.DeadlineDefault(slo); d != 0 {
		t.Errorf("standard deadline default %s, want 0", d)
	}
	if f := Batch.WindowFactor(); f != MaxWindowFactor {
		t.Errorf("batch window factor %v, want MaxWindowFactor %v", f, MaxWindowFactor)
	}
	if Interactive.WindowFactor() >= Standard.WindowFactor() {
		t.Error("interactive window must be shorter than standard")
	}
	if Interactive.PriorityBias() <= Standard.PriorityBias() ||
		Batch.PriorityBias() >= Standard.PriorityBias() {
		t.Error("priority bias must order interactive > standard > batch")
	}
}

func TestConfigValidate(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"minimal", Config{ID: "a"}, true},
		{"full", Config{ID: "team-a.prod:eu_1", SLOClass: "batch", Capacity: 10, RefillPerSec: 5, Weight: 2}, true},
		{"empty id", Config{}, false},
		{"long id", Config{ID: strings.Repeat("x", MaxIDLen+1)}, false},
		{"max id", Config{ID: strings.Repeat("x", MaxIDLen)}, true},
		{"bad byte", Config{ID: "team a"}, false},
		{"utf8 id", Config{ID: "café"}, false},
		{"bad class", Config{ID: "a", SLOClass: "bulk"}, false},
		{"neg capacity", Config{ID: "a", Capacity: -1}, false},
		{"nan capacity", Config{ID: "a", Capacity: nan}, false},
		{"neg refill", Config{ID: "a", RefillPerSec: -1}, false},
		{"nan refill", Config{ID: "a", RefillPerSec: nan}, false},
		{"neg weight", Config{ID: "a", Weight: -1}, false},
		{"nan weight", Config{ID: "a", Weight: nan}, false},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestParseConfig(t *testing.T) {
	good := `{"tenants": [
		{"id": "a", "slo_class": "interactive", "capacity": 100, "refill_per_sec": 10, "weight": 4},
		{"id": "b"}
	]}`
	cfgs, err := ParseConfig([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 || cfgs[0].ID != "a" || cfgs[0].Capacity != 100 || cfgs[1].ID != "b" {
		t.Fatalf("parsed %+v", cfgs)
	}

	bad := []struct {
		name, in string
	}{
		{"unknown field", `{"tenants": [{"id": "a", "burst": 5}]}`},
		{"unknown top-level", `{"tenant": []}`},
		{"trailing data", `{"tenants": []} {"tenants": []}`},
		{"duplicate id", `{"tenants": [{"id": "a"}, {"id": "a"}]}`},
		{"invalid record", `{"tenants": [{"id": ""}]}`},
		{"not json", `tenants: []`},
	}
	for _, c := range bad {
		if _, err := ParseConfig([]byte(c.in)); err == nil {
			t.Errorf("%s: ParseConfig accepted %q", c.name, c.in)
		}
	}
}

func TestRegistryLookupAndDefault(t *testing.T) {
	reg, err := NewRegistry(Config{ID: "a", Weight: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Get("a").ID(); got != "a" {
		t.Fatalf("Get(a) resolved %q", got)
	}
	// Empty and unknown ids fall back to the always-present default.
	for _, id := range []string{"", DefaultID, "nobody"} {
		if got := reg.Get(id).ID(); got != DefaultID {
			t.Fatalf("Get(%q) resolved %q, want default", id, got)
		}
	}
	if _, ok := reg.Lookup("nobody"); ok {
		t.Fatal("Lookup found an unregistered tenant")
	}
	if _, ok := reg.Lookup(DefaultID); !ok {
		t.Fatal("registry is missing the default record")
	}
	// The implicit default is unlimited.
	if ok, _ := reg.Get("nobody").Admit(1 << 20); !ok {
		t.Fatal("implicit default tenant rejected a request")
	}

	if _, err := NewRegistry(Config{ID: "a"}, Config{ID: "a"}); err == nil {
		t.Fatal("NewRegistry accepted duplicate ids")
	}
	if _, err := NewRegistry(Config{ID: "bad id"}); err == nil {
		t.Fatal("NewRegistry accepted an invalid config")
	}
}

// TestRegistryPutLiveUpdate checks the admin-API semantics: Put on an
// existing id rewires class/weight/bucket in place (same record), and a
// capacity cut clamps the bucket immediately.
func TestRegistryPutLiveUpdate(t *testing.T) {
	reg, err := NewRegistry(Config{ID: "a", Capacity: 1000, RefillPerSec: 0, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	tn := reg.Get("a")
	if ok, _ := tn.Admit(10); !ok {
		t.Fatal("fresh bucket rejected")
	}
	upd := reg.Put(Config{ID: "a", SLOClass: "interactive", Capacity: 1, RefillPerSec: 0, Weight: 9})
	if upd != tn {
		t.Fatal("Put replaced the record instead of updating it")
	}
	if tn.Class() != Interactive || tn.Weight() != 9 {
		t.Fatalf("live update lost class/weight: %v/%v", tn.Class(), tn.Weight())
	}
	if ok, _ := tn.Admit(10); ok {
		t.Fatal("capacity cut did not clamp the bucket")
	}
	got := tn.Config()
	if got.SLOClass != "interactive" || got.Capacity != 1 || got.Weight != 9 {
		t.Fatalf("Config() = %+v", got)
	}
}

func TestWeightFloor(t *testing.T) {
	reg, err := NewRegistry(Config{ID: "a"}) // weight omitted: 0
	if err != nil {
		t.Fatal(err)
	}
	if w := reg.Get("a").Weight(); w != 1 {
		t.Fatalf("unset weight resolved %v, want floor 1", w)
	}
}

func TestRegistryStatsSorted(t *testing.T) {
	reg, err := NewRegistry(Config{ID: "zeta"}, Config{ID: "alpha"}, Config{ID: "mid"})
	if err != nil {
		t.Fatal(err)
	}
	reg.Get("zeta").Admit(1)
	reg.Get("zeta").RecordDispatched(42)
	stats := reg.Stats()
	if len(stats) != 4 { // three configured + default
		t.Fatalf("Stats returned %d records", len(stats))
	}
	for i := 1; i < len(stats); i++ {
		if stats[i-1].ID >= stats[i].ID {
			t.Fatalf("Stats not sorted: %q before %q", stats[i-1].ID, stats[i].ID)
		}
	}
	for _, s := range stats {
		if s.ID == "zeta" && (s.Admitted != 1 || s.Dispatched != 42) {
			t.Fatalf("zeta stat %+v", s)
		}
	}
	cfgs := reg.Configs()
	if len(cfgs) != 4 || cfgs[0].ID != "alpha" {
		t.Fatalf("Configs() = %+v", cfgs)
	}
}

// TestAdmitConcurrent hammers one limited and one unlimited tenant from
// many goroutines; under -race this audits the lock striping, and the
// counters must exactly partition the attempts.
func TestAdmitConcurrent(t *testing.T) {
	reg, err := NewRegistry(
		Config{ID: "lim", Capacity: 500, RefillPerSec: 1000},
		Config{ID: "unlim"},
	)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 500
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			id := "lim"
			if w%2 == 1 {
				id = "unlim"
			}
			tn := reg.Get(id)
			for i := 0; i < per; i++ {
				tn.Admit(10)
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	for _, id := range []string{"lim", "unlim"} {
		st := reg.Get(id).Stat()
		if st.Admitted+st.Rejected != workers/2*per {
			t.Fatalf("%s: admitted %d + rejected %d != attempts %d",
				id, st.Admitted, st.Rejected, workers/2*per)
		}
	}
	if st := reg.Get("unlim").Stat(); st.Rejected != 0 {
		t.Fatalf("unlimited tenant rejected %d", st.Rejected)
	}
}

func ExampleParseConfig() {
	cfgs, _ := ParseConfig([]byte(`{"tenants": [{"id": "team-a", "slo_class": "interactive", "weight": 4}]}`))
	fmt.Println(cfgs[0].ID, cfgs[0].SLOClass, cfgs[0].Weight)
	// Output: team-a interactive 4
}
