// Package tenant implements multi-tenant serving policy for the live
// cluster: a registry of tenant records (identity, SLO class, token-bucket
// admission budget, fair-share weight) consulted on every submit path.
//
// The registry sits *in front* of the cluster queue: admission runs before
// a request touches the multi-level queue or the ingress rings, so a
// bursting tenant is rejected at the door (HTTP 429 / wire
// StatusRateLimited with a Retry-After hint) instead of congesting the
// dispatch order and triggering Algorithm 1 demotions for everyone else.
//
// Hot-path constraints: Admit is lock-striped (a read-lock on one of 16
// registry shards to resolve the record, then one per-tenant mutex for the
// bucket arithmetic) and allocation-free. Tenants with Capacity == 0 are
// unlimited and skip the bucket entirely — the implicit "default" tenant
// is unlimited unless configured otherwise, so single-tenant deployments
// pay only a map read and two atomic adds per request.
package tenant

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultID is the tenant every request without an explicit tenant
// identity is accounted to. The registry always holds a record for it.
const DefaultID = "default"

// MaxIDLen bounds tenant identifiers: they travel in a single length byte
// in wire V2 frames and become metric label values, so they stay short.
const MaxIDLen = 128

// ErrRateLimited is the typed admission-rejection sentinel: the tenant's
// token bucket had insufficient budget. Wrapped by RateLimitError so
// callers can recover the Retry-After hint with errors.As.
var ErrRateLimited = errors.New("tenant: rate limited")

// RateLimitError is the concrete admission rejection: it satisfies
// errors.Is(err, ErrRateLimited) and carries the bucket's refill horizon.
type RateLimitError struct {
	// Tenant is the resolved tenant the rejection is accounted to.
	Tenant string
	// RetryAfter estimates when the bucket will hold enough tokens for the
	// rejected request, bounded to [1ms, 1h].
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("tenant %q rate limited, retry after %s", e.Tenant, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrRateLimited) hold.
func (e *RateLimitError) Unwrap() error { return ErrRateLimited }

// Class is a tenant's SLO class. Classes map to per-class deadline
// defaults, batching-window policy and queue-priority bias:
//
//	class        deadline default  batch window  priority bias
//	interactive  the model SLO     0.25x         2.0
//	standard     none              1x            1.0
//	batch        none              4x            0.5
//
// The deadline default bounds the batch-collection window for requests
// submitted without a context deadline; the window factor scales the
// Former's collection window per member; the bias multiplies the tenant's
// fair-share weight in the dispatch order.
type Class uint8

const (
	// Standard is the zero-value class: the behavior every request had
	// before multi-tenancy existed.
	Standard Class = iota
	// Interactive requests get the model SLO as an implicit deadline and a
	// shortened batch-collection window.
	Interactive
	// Batch requests tolerate a stretched collection window in exchange
	// for better batching amortization, and yield dispatch priority.
	Batch
	numClasses
)

// MaxWindowFactor is the largest Class.WindowFactor — the batched worker
// sizes its Former's MaxDelay by it so batch-class members can stretch
// the window.
const MaxWindowFactor = 4.0

// ParseClass parses a config string; the empty string is Standard.
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "standard":
		return Standard, nil
	case "interactive":
		return Interactive, nil
	case "batch":
		return Batch, nil
	}
	return Standard, fmt.Errorf("tenant: unknown slo class %q", s)
}

func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	}
	return "standard"
}

// DeadlineDefault is the implicit deadline (in modeled time) applied to
// requests of this class submitted without a context deadline; zero means
// no implicit deadline. slo is the deployment's service objective.
func (c Class) DeadlineDefault(slo time.Duration) time.Duration {
	if c == Interactive {
		return slo
	}
	return 0
}

// WindowFactor scales the batch-collection window for members of this
// class.
func (c Class) WindowFactor() float64 {
	switch c {
	case Interactive:
		return 0.25
	case Batch:
		return MaxWindowFactor
	}
	return 1
}

// PriorityBias multiplies the tenant's fair-share weight in dispatch
// ordering.
func (c Class) PriorityBias() float64 {
	switch c {
	case Interactive:
		return 2
	case Batch:
		return 0.5
	}
	return 1
}

// Config is one tenant record as configured (the -tenants-config file
// schema and the PUT /v1/tenants/{id} body).
type Config struct {
	// ID identifies the tenant (required in config files; implied by the
	// URL path on the admin API).
	ID string `json:"id"`
	// SLOClass is "interactive", "standard" (default) or "batch".
	SLOClass string `json:"slo_class,omitempty"`
	// Capacity is the token-bucket burst capacity in tokens (input +
	// requested output tokens). 0 means unlimited: admission always passes.
	Capacity float64 `json:"capacity,omitempty"`
	// RefillPerSec is the bucket's sustained refill rate in tokens/second.
	RefillPerSec float64 `json:"refill_per_sec,omitempty"`
	// Weight is the tenant's fair-share weight in dispatch ordering
	// (default 1 when <= 0).
	Weight float64 `json:"weight,omitempty"`
}

// Validate checks a single record.
func (c Config) Validate() error {
	if c.ID == "" {
		return errors.New("tenant: empty id")
	}
	if len(c.ID) > MaxIDLen {
		return fmt.Errorf("tenant: id longer than %d bytes", MaxIDLen)
	}
	for i := 0; i < len(c.ID); i++ {
		b := c.ID[i]
		ok := b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' ||
			b == '-' || b == '_' || b == '.' || b == ':'
		if !ok {
			return fmt.Errorf("tenant: id %q contains invalid byte %q", c.ID, b)
		}
	}
	if _, err := ParseClass(c.SLOClass); err != nil {
		return err
	}
	if c.Capacity < 0 || c.Capacity != c.Capacity {
		return fmt.Errorf("tenant %q: negative or NaN capacity", c.ID)
	}
	if c.RefillPerSec < 0 || c.RefillPerSec != c.RefillPerSec {
		return fmt.Errorf("tenant %q: negative or NaN refill_per_sec", c.ID)
	}
	if c.Weight < 0 || c.Weight != c.Weight {
		return fmt.Errorf("tenant %q: negative or NaN weight", c.ID)
	}
	return nil
}

// configFile is the -tenants-config file schema:
//
//	{"tenants": [{"id": "...", "slo_class": "...", "capacity": 0,
//	              "refill_per_sec": 0, "weight": 0}, ...]}
type configFile struct {
	Tenants []Config `json:"tenants"`
}

// ParseConfig strictly decodes a tenants config file and validates every
// record (unknown fields, trailing data and duplicate ids are errors).
func ParseConfig(data []byte) ([]Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f configFile
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("tenant: parse config: %w", err)
	}
	if dec.More() {
		return nil, errors.New("tenant: parse config: trailing data after document")
	}
	seen := make(map[string]bool, len(f.Tenants))
	for _, c := range f.Tenants {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if seen[c.ID] {
			return nil, fmt.Errorf("tenant: duplicate id %q", c.ID)
		}
		seen[c.ID] = true
	}
	return f.Tenants, nil
}

// Tenant is one live tenant record. All methods are safe for concurrent
// use; Admit and the policy accessors allocate nothing.
type Tenant struct {
	id    string
	base  time.Time // monotonic epoch shared with the registry
	class atomic.Uint32
	// weight holds math.Float64bits of the fair-share weight.
	weight atomic.Uint64

	// bucket state, guarded by mu. capacity <= 0 means unlimited.
	mu       sync.Mutex
	capacity float64
	refill   float64 // tokens per second
	tokens   float64
	lastNS   int64

	admitted   atomic.Int64
	rejected   atomic.Int64
	dispatched atomic.Int64 // cumulative token cost handed to workers
}

// ID returns the tenant identifier.
func (t *Tenant) ID() string { return t.id }

// Class returns the tenant's SLO class.
func (t *Tenant) Class() Class { return Class(t.class.Load()) }

// Weight returns the tenant's fair-share weight (>= a small positive
// floor, so stride arithmetic never divides by zero).
func (t *Tenant) Weight() float64 {
	w := math.Float64frombits(t.weight.Load())
	if w <= 0 {
		return 1
	}
	return w
}

// Admit runs token-bucket admission for a request costing the given
// number of tokens (input length + requested output tokens). ok reports
// admission; on rejection retryAfter estimates when the bucket will hold
// enough budget. Allocation-free.
func (t *Tenant) Admit(tokens int) (ok bool, retryAfter time.Duration) {
	return t.admitAt(int64(time.Since(t.base)), tokens)
}

// admitAt is Admit against an explicit monotonic clock (nanoseconds since
// the registry epoch) — the deterministic entry point tests drive.
func (t *Tenant) admitAt(nowNS int64, tokens int) (bool, time.Duration) {
	cost := float64(tokens)
	if cost < 1 {
		cost = 1
	}
	t.mu.Lock()
	if t.capacity <= 0 { // unlimited
		t.mu.Unlock()
		t.admitted.Add(1)
		return true, 0
	}
	if el := nowNS - t.lastNS; el > 0 {
		t.tokens += float64(el) * t.refill / 1e9
		if t.tokens > t.capacity {
			t.tokens = t.capacity
		}
		t.lastNS = nowNS
	}
	if t.tokens >= cost {
		t.tokens -= cost
		t.mu.Unlock()
		t.admitted.Add(1)
		return true, 0
	}
	need := cost - t.tokens
	refill := t.refill
	t.mu.Unlock()
	t.rejected.Add(1)
	retry := time.Hour
	if refill > 0 {
		retry = time.Duration(need / refill * 1e9)
	}
	if retry < time.Millisecond {
		retry = time.Millisecond
	}
	if retry > time.Hour {
		retry = time.Hour
	}
	return false, retry
}

// RecordDispatched accounts token cost handed to a worker in fair-share
// order — the numerator of the arlo_tenant_queue_share gauge.
func (t *Tenant) RecordDispatched(tokens int) {
	if tokens < 1 {
		tokens = 1
	}
	t.dispatched.Add(int64(tokens))
}

// configure (re)applies a validated Config to the live record. The bucket
// starts (or is clamped) full-to-capacity so a capacity cut takes effect
// immediately and a fresh tenant can burst.
func (t *Tenant) configure(c Config) {
	cl, _ := ParseClass(c.SLOClass)
	t.class.Store(uint32(cl))
	t.weight.Store(math.Float64bits(c.Weight))
	t.mu.Lock()
	t.capacity = c.Capacity
	t.refill = c.RefillPerSec
	if t.tokens > t.capacity || t.lastNS == 0 {
		t.tokens = t.capacity
	}
	if t.lastNS == 0 {
		t.lastNS = int64(time.Since(t.base))
	}
	t.mu.Unlock()
}

// Config returns the record's current configuration.
func (t *Tenant) Config() Config {
	t.mu.Lock()
	cap, refill := t.capacity, t.refill
	t.mu.Unlock()
	return Config{
		ID:           t.id,
		SLOClass:     t.Class().String(),
		Capacity:     cap,
		RefillPerSec: refill,
		Weight:       math.Float64frombits(t.weight.Load()),
	}
}

// Stat is one tenant's scrape-time accounting snapshot.
type Stat struct {
	ID         string
	Class      Class
	Admitted   int64
	Rejected   int64
	Dispatched int64 // cumulative dispatched token cost
}

const numShards = 16

type shard struct {
	mu sync.RWMutex
	m  map[string]*Tenant
}

// Registry holds the live tenant records, sharded by FNV-1a of the tenant
// id so concurrent admission on different tenants never contends on one
// lock. Lookups for unknown tenants fall back to the DefaultID record
// (always present), which both bounds metric cardinality and gives
// unregistered clients a policed shared budget.
type Registry struct {
	base   time.Time
	shards [numShards]shard
	def    *Tenant
}

// NewRegistry builds a registry from validated configs. A DefaultID
// record (unlimited, standard, weight 1) is added when the configs don't
// provide one.
func NewRegistry(cfgs ...Config) (*Registry, error) {
	r := &Registry{base: time.Now()}
	for i := range r.shards {
		r.shards[i].m = make(map[string]*Tenant)
	}
	hasDefault := false
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if _, dup := r.Lookup(c.ID); dup {
			return nil, fmt.Errorf("tenant: duplicate id %q", c.ID)
		}
		r.Put(c)
		if c.ID == DefaultID {
			hasDefault = true
		}
	}
	if !hasDefault {
		r.Put(Config{ID: DefaultID})
	}
	r.def, _ = r.Lookup(DefaultID)
	return r, nil
}

// shardOf hashes id with FNV-1a (inlined, allocation-free).
func (r *Registry) shardOf(id string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return &r.shards[h%numShards]
}

// Get resolves a request's tenant id to its record; the empty string and
// unknown ids resolve to the DefaultID record. Allocation-free.
func (r *Registry) Get(id string) *Tenant {
	if id == "" || id == DefaultID {
		return r.def
	}
	s := r.shardOf(id)
	s.mu.RLock()
	t := s.m[id]
	s.mu.RUnlock()
	if t == nil {
		return r.def
	}
	return t
}

// Lookup resolves an id without the default fallback — the admin GET
// path, where an unknown tenant is a 404.
func (r *Registry) Lookup(id string) (*Tenant, bool) {
	s := r.shardOf(id)
	s.mu.RLock()
	t := s.m[id]
	s.mu.RUnlock()
	return t, t != nil
}

// Put inserts or live-updates a tenant record and returns it. The config
// must already be validated.
func (r *Registry) Put(c Config) *Tenant {
	s := r.shardOf(c.ID)
	s.mu.Lock()
	t := s.m[c.ID]
	if t == nil {
		t = &Tenant{id: c.ID, base: r.base}
		s.m[c.ID] = t
	}
	s.mu.Unlock()
	t.configure(c)
	return t
}

// Configs returns every record's configuration, sorted by id.
func (r *Registry) Configs() []Config {
	var out []Config
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, t := range s.m {
			out = append(out, t.Config())
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stat snapshots one tenant's admission/dispatch books.
func (t *Tenant) Stat() Stat {
	return Stat{
		ID:         t.id,
		Class:      t.Class(),
		Admitted:   t.admitted.Load(),
		Rejected:   t.rejected.Load(),
		Dispatched: t.dispatched.Load(),
	}
}

// Stats snapshots every tenant's admission/dispatch books, sorted by id —
// the source of arlo_admission_total and arlo_tenant_queue_share.
func (r *Registry) Stats() []Stat {
	var out []Stat
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, t := range s.m {
			out = append(out, t.Stat())
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
