# Arlo reproduction — common targets.

GO ?= go

.PHONY: all build test test-short race bench experiments experiments-full vet fmt clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/cluster/ ./internal/serve/ ./internal/core/ ./internal/multistream/ ./internal/metrics/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Regenerate every table and figure of the paper (quick mode, ~1 min).
experiments:
	$(GO) run ./cmd/arlobench -exp all

# Paper-scale workloads (several minutes).
experiments-full:
	$(GO) run ./cmd/arlobench -exp all -full

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
