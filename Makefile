# Arlo reproduction — common targets.

GO ?= go

.PHONY: all build test test-short race bench bench-dispatch experiments experiments-full vet fmt clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/queue/ ./internal/dispatch/ ./internal/cluster/ ./internal/serve/ ./internal/core/ ./internal/multistream/ ./internal/metrics/ ./internal/tokenizer/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# The lock-striped dispatch path under increasing parallelism (Fig. 9
# family; the GlobalMutex variant is the pre-striping baseline).
bench-dispatch:
	$(GO) test -bench 'Fig9' -benchmem -cpu 1,4,8 -run=^$$ .

# Regenerate every table and figure of the paper (quick mode, ~1 min).
experiments:
	$(GO) run ./cmd/arlobench -exp all

# Paper-scale workloads (several minutes).
experiments-full:
	$(GO) run ./cmd/arlobench -exp all -full

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
