# Arlo reproduction — common targets.

GO ?= go

.PHONY: all build test test-short race bench bench-dispatch bench-obs experiments experiments-full vet staticcheck lint fmt clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/queue/ ./internal/dispatch/ ./internal/cluster/ ./internal/serve/ ./internal/core/ ./internal/multistream/ ./internal/metrics/ ./internal/tokenizer/ ./internal/obs/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# The lock-striped dispatch path under increasing parallelism (Fig. 9
# family; the GlobalMutex variant is the pre-striping baseline).
bench-dispatch:
	$(GO) test -bench 'Fig9' -benchmem -cpu 1,4,8 -run=^$$ .

# Observability overhead guard: the Fig. 9 dispatch hot path with the
# observer plane disabled (nil recorder) must stay within ~10% of the
# plain dispatch benchmark, and the On/Off gap is the price of enabling
# metrics. Compare the three ns/op lines by eye or in CI.
bench-obs:
	$(GO) test -bench 'Fig9Dispatch1200Instances|Fig9DispatchObserver' -benchmem -count 3 -run=^$$ .

# Regenerate every table and figure of the paper (quick mode, ~1 min).
experiments:
	$(GO) run ./cmd/arlobench -exp all

# Paper-scale workloads (several minutes).
experiments-full:
	$(GO) run ./cmd/arlobench -exp all -full

vet:
	$(GO) vet ./...

# staticcheck is optional tooling: run it when installed, skip quietly
# in environments that only have the Go toolchain.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping" ; \
	fi

lint: vet staticcheck

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
