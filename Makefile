# Arlo reproduction — common targets.

GO ?= go

.PHONY: all build test test-short race chaos fuzz bench bench-dispatch bench-obs bench-batch bench-serve bench-ingress bench-generate bench-tenants bench-controller bench-router experiments experiments-full vet staticcheck lint fmt clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/queue/ ./internal/dispatch/ ./internal/cluster/ ./internal/serve/ ./internal/core/ ./internal/multistream/ ./internal/metrics/ ./internal/tokenizer/ ./internal/obs/ ./internal/failover/ ./internal/chaos/ ./internal/batcher/ ./internal/ring/ ./internal/wire/ ./internal/trace/ ./internal/model/ ./internal/tenant/ ./internal/controller/ ./internal/allocator/ ./internal/router/

# The deterministic fault-injection harness: 500 seeded runs of the live
# cluster under scripted crashes, slowdowns and cancellations, with the
# conservation invariants audited after every run. The ManySeeds pattern
# also matches the generative sweep (continuous batching, per-iteration
# conservation plus full-token-count audit).
chaos:
	$(GO) test -race -run 'TestConservationManySeeds|TestScripted|TestRecovery|TestCrossCheck' -v ./internal/chaos/

# Short local fuzz pass over the checked-in corpora plus 30s of search
# per target (same budget CI uses).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzTokenizerEncode -fuzztime 30s ./internal/tokenizer/
	$(GO) test -run '^$$' -fuzz 'FuzzTraceParse$$' -fuzztime 30s ./internal/trace/
	$(GO) test -run '^$$' -fuzz FuzzGenerativeTraceParse -fuzztime 30s ./internal/trace/
	$(GO) test -run '^$$' -fuzz FuzzBatchWindow -fuzztime 30s ./internal/batcher/
	$(GO) test -run '^$$' -fuzz FuzzWireDecode -fuzztime 30s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzTenantConfigParse -fuzztime 30s ./internal/tenant/
	$(GO) test -run '^$$' -fuzz FuzzPlanReplacements -fuzztime 30s ./internal/allocator/
	$(GO) test -run '^$$' -fuzz FuzzLoadSnapshotDecode -fuzztime 30s ./internal/wire/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# The lock-striped dispatch path under increasing parallelism (Fig. 9
# family; the GlobalMutex variant is the pre-striping baseline).
bench-dispatch:
	$(GO) test -bench 'Fig9' -benchmem -cpu 1,4,8 -run=^$$ .

# Observability overhead guard: the Fig. 9 dispatch hot path with the
# observer plane disabled (nil recorder) must stay within ~10% of the
# plain dispatch benchmark, and the On/Off gap is the price of enabling
# metrics. Compare the three ns/op lines by eye or in CI.
bench-obs:
	$(GO) test -bench 'Fig9Dispatch1200Instances|Fig9DispatchObserver' -benchmem -count 3 -run=^$$ .

# Dynamic batching win on the live cluster: drains the Fig. 9 uniform
# burst at batch cap 1 vs 8, then holds 1.25x the sequential throughput
# while checking sustained p99 against the SLO. Writes BENCH_batch.json.
bench-batch:
	$(GO) run ./cmd/arlobench -exp bench-batch

# JSON hot-path allocation guard plus handler- and socket-level serving
# benchmarks (allocs/op is the number to watch).
bench-serve:
	$(GO) test -run TestInferAllocGuard -v ./internal/serve/
	$(GO) test -bench 'InferJSON' -benchmem -run '^$$' ./internal/serve/

# Ingress hot path at the socket: closed-loop RPS/p50/p99/mallocs per
# protocol (JSON vs binary wire), an open-loop target-RPS sweep, and the
# grouped vs per-request submit layer. Writes BENCH_ingress.json.
bench-ingress:
	$(GO) run ./cmd/arlobench -exp bench-ingress

# Continuous (iteration-level) batching vs run-to-completion on a
# generative burst: same prompts and output budgets through both worker
# loops; continuous must win throughput at equal-or-better p99 TTFT.
# Writes BENCH_generate.json.
bench-generate:
	$(GO) run ./cmd/arlobench -exp bench-generate

# Noisy-neighbor isolation on the live cluster: a steady victim tenant
# against a 9x bursting tenant, baseline (shared queue) vs token-bucket
# admission + weighted fair dispatch. The victim's p99 must improve and
# every noisy rejection must be the typed 429. Writes BENCH_tenants.json.
bench-tenants:
	$(GO) run ./cmd/arlobench -exp bench-tenants

# Sharded-tier routing quality: the policy x snapshot-staleness grid
# (length-aware vs round-robin vs least-loaded at immediate/10ms/100ms/1s
# refresh) over three heterogeneous in-process shards, plus a shard-kill
# run whose conservation audit must lose zero requests. Writes
# BENCH_router.json.
bench-router:
	$(GO) run ./cmd/arlobench -exp bench-router

# Closing the control loop on the live cluster: a drifting length mix
# served by a frozen allocation vs the replanning controller (budgeted
# minimal replacements from the observed sliding window). The controller
# arm must win SLO attainment after the drift. Writes BENCH_controller.json.
bench-controller:
	$(GO) run ./cmd/arlobench -exp bench-controller

# Regenerate every table and figure of the paper (quick mode, ~1 min).
experiments:
	$(GO) run ./cmd/arlobench -exp all

# Paper-scale workloads (several minutes).
experiments-full:
	$(GO) run ./cmd/arlobench -exp all -full

vet:
	$(GO) vet ./...

# staticcheck is optional tooling: run it when installed, skip quietly
# in environments that only have the Go toolchain.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping" ; \
	fi

lint: vet staticcheck

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
