// Autoscaling: serve a bursty BERT-Large stream starting from a small
// cluster and let the target-tracking auto-scaler (paper section 4) grow
// and shrink the GPU pool while the Runtime Scheduler keeps rebalancing
// the runtimes.
//
//	go run ./examples/autoscaling
package main

import (
	"fmt"
	"log"
	"time"

	"arlo/internal/core"
	"arlo/internal/trace"
)

func main() {
	a, err := core.NewSystem(core.WithModel("bert-large"), core.WithAllocPeriod(45*time.Second))
	if err != nil {
		log.Fatal(err)
	}

	// A bursty stream whose load swings on the minute scale.
	rate := 500.0
	tr, err := trace.Generate(trace.Config{
		Seed:     11,
		Duration: 5 * time.Minute,
		Arrivals: trace.MMPP{
			LowRate:  0.6 * rate / 0.9,
			HighRate: 1.5 * rate / 0.9,
			MeanLow:  60 * time.Second,
			MeanHigh: 30 * time.Second,
		},
		Lengths: trace.TwitterRecalibrated(11),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bursty Bert-Large stream: %d requests over %v (avg %.0f req/s)\n",
		len(tr.Requests), tr.Duration, tr.MeanRate())

	res, err := a.SimulateAutoScaled(tr, 4) // start with 4 GPUs
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latency: %v\n", res.Summary)
	fmt.Printf("scaling: %d scale-outs, %d scale-ins, %d instance replacements\n",
		res.ScaleOuts, res.ScaleIns, res.Replacements)
	fmt.Printf("GPUs: time-weighted %.2f, final %.0f\n", res.TimeWeightedGPUs, res.GPUs.Last())
	fmt.Println("\nGPU count over time:")
	for _, pt := range res.GPUs.Series() {
		fmt.Printf("  t=%6.1fs  %2.0f GPUs\n", pt.At.Seconds(), pt.Value)
	}
}
