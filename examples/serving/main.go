// Serving: the end-to-end text path — spin up the HTTP front end over an
// Arlo-scheduled emulated cluster in-process, classify a few texts of very
// different lengths, and show how the tokenized length drives which
// runtime serves each request.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"strings"

	"arlo/internal/core"
	"arlo/internal/serve"
	"arlo/internal/tokenizer"
)

func main() {
	a, err := core.NewSystem(core.WithModel("bert-base"))
	if err != nil {
		log.Fatal(err)
	}
	cl, err := a.NewCluster(8, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	tok := tokenizer.New()
	srv, err := serve.New(tok, cl, serve.WithMaxLength(a.Model.Arch().MaxLength))
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := &serve.Client{BaseURL: ts.URL}
	fmt.Printf("serving %s behind %s with 8 emulated GPUs\n\n", a.Model.Arch().Name, ts.URL)

	texts := []string{
		"good morning twitter",
		"check out this video of the game last night, the team played so well and the final minutes were unbelievable",
		strings.Repeat("the quick brown fox jumps over the lazy dog and keeps running through the long winding story of the day ", 12),
	}
	for i, text := range texts {
		resp, err := client.Infer(text)
		if err != nil {
			log.Fatal(err)
		}
		ideal, _ := a.Profile.IdealRuntime(resp.SequenceLength)
		fmt.Printf("text %d: %d chars -> %d tokens -> ideal runtime max_length %d\n",
			i+1, len(text), resp.SequenceLength, a.Profile.Runtimes[ideal].MaxLength)
		fmt.Printf("        label=%q latency=%.2f ms (queue %.2f ms, exec %.2f ms, %d demotion hops, instance %d at level %d)\n",
			resp.Label, resp.LatencyMS, resp.QueueMS, resp.ExecMS, resp.DemotionHops, resp.Instance, resp.Runtime)
	}

	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserver stats: served=%d rejected=%d instances=%d\n",
		stats.Served, stats.Rejected, stats.Instances)

	// The same lifecycle data aggregates into the Prometheus exposition:
	// a live deployment would point a scraper at GET /metrics.
	body, err := client.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nselected /metrics lines:")
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "arlo_requests_") || strings.HasPrefix(line, "arlo_queue_depth") {
			fmt.Println("  " + line)
		}
	}
}
