// Replay: capture a production-like trace to CSV, load it back, and
// replay its empirical length distribution at a higher rate — the
// workflow for evaluating Arlo against your own recorded traffic.
//
//	go run ./examples/replay
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"arlo/internal/core"
	"arlo/internal/trace"
)

func main() {
	// 1. "Record" a production trace (here: synthesized) and persist it.
	recorded, err := trace.Generate(trace.Stable(3, 600, 30*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := recorded.WriteCSV(&csvBuf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d requests (%d CSV bytes)\n", len(recorded.Requests), csvBuf.Len())

	// 2. Load it back, exactly as a downstream user would from a file.
	loaded, err := trace.ReadCSV(&csvBuf, recorded.Duration)
	if err != nil {
		log.Fatal(err)
	}
	st := loaded.Stats()
	fmt.Printf("loaded: p50=%d p98=%d max=%d\n", st.Median, st.P98, st.Max)

	// 3. Build the empirical length distribution and replay it at 3x the
	//    recorded rate to answer: "do 10 GPUs hold at projected growth?"
	emp, err := trace.NewEmpiricalLengths(loaded.Lengths())
	if err != nil {
		log.Fatal(err)
	}
	projected, err := trace.Generate(trace.Config{
		Seed:     4,
		Duration: 30 * time.Second,
		Arrivals: trace.Poisson{Rate: 3 * loaded.MeanRate()},
		Lengths:  emp,
	})
	if err != nil {
		log.Fatal(err)
	}
	a, err := core.NewSystem(core.WithModel("bert-base"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.Simulate(projected, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay at 3x rate (%.0f req/s) on 10 GPUs: %v\n", projected.MeanRate(), res.Summary)
	if res.Summary.SLOFraction == 0 {
		fmt.Println("verdict: 10 GPUs hold the projected load within the SLO")
	} else {
		fmt.Printf("verdict: provision more GPUs (%.2f%% SLO violations)\n", 100*res.Summary.SLOFraction)
	}
}
