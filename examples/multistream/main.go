// Multistream: the paper's Discussion (section 6) extension — two request
// streams (a busy BERT-Base stream and a lighter BERT-Large stream) share
// one GPU pool. A coordinator splits the pool by greedy marginal cost
// using each stream's own allocation program, then each stream runs its
// dedicated Arlo within its share. Compare against a naive even split.
//
//	go run ./examples/multistream
package main

import (
	"fmt"
	"log"
	"time"

	"arlo/internal/core"
	"arlo/internal/multistream"
	"arlo/internal/trace"
)

func main() {
	base, err := core.NewSystem(core.WithModel("bert-base"))
	if err != nil {
		log.Fatal(err)
	}
	large, err := core.NewSystem(core.WithModel("bert-large"))
	if err != nil {
		log.Fatal(err)
	}
	trBase, err := trace.Generate(trace.Stable(41, 2600, 30*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	trLarge, err := trace.Generate(trace.Stable(43, 250, 30*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	streams := []*multistream.Stream{
		{Name: "bert-base@2600req/s", System: base, Trace: trBase},
		{Name: "bert-large@250req/s", System: large, Trace: trLarge},
	}
	const pool = 14

	report := func(label string, shares []int) time.Duration {
		results, err := multistream.Run(pool, streams, shares)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", label)
		for _, r := range results {
			fmt.Printf("  %-22s %2d GPUs  %v\n", r.Name, r.GPUs, r.Res.Summary)
		}
		wm := multistream.WeightedMean(results)
		fmt.Printf("  pool-wide weighted mean: %.2f ms\n\n", float64(wm)/float64(time.Millisecond))
		return wm
	}

	coordShares, err := multistream.Partition(pool, streams)
	if err != nil {
		log.Fatal(err)
	}
	coord := report(fmt.Sprintf("coordinated partition %v", coordShares), coordShares)

	evenShares, err := multistream.EvenPartition(pool, len(streams))
	if err != nil {
		log.Fatal(err)
	}
	even := report(fmt.Sprintf("even partition %v", evenShares), evenShares)

	fmt.Printf("demand-aware coordination improves the pool-wide mean by %.1f%%\n",
		100*(1-float64(coord)/float64(even)))
}
