// Comparison: run the four serving schemes of the paper's evaluation —
// uniform zero-padding (ST), dynamic compilation (DT), INFaaS-style
// multi-variant serving, and Arlo — on the same bursty trace and fixed
// cluster, printing the latency quantiles each achieves.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"time"

	"arlo/internal/baselines"
	"arlo/internal/model"
	"arlo/internal/sim"
	"arlo/internal/trace"
)

func main() {
	lm := model.BertBase()
	slo := 150 * time.Millisecond
	const gpus = 10

	tr, err := trace.Generate(trace.Bursty(23, 1200, time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Twitter-Bursty Bert-Base stream: %d requests, %d GPUs, SLO %v\n\n",
		len(tr.Requests), gpus, slo)

	st, err := baselines.ST(lm, slo)
	if err != nil {
		log.Fatal(err)
	}
	dt, err := baselines.DT(lm, tr.Lengths()[:1000], slo)
	if err != nil {
		log.Fatal(err)
	}
	infaas, err := baselines.INFaaS(lm, slo)
	if err != nil {
		log.Fatal(err)
	}
	arlo, err := baselines.Arlo(lm, slo)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %10s %10s %10s %10s %8s\n", "scheme", "mean(ms)", "p50(ms)", "p98(ms)", "max(ms)", "viol%")
	for _, s := range []*baselines.System{st, dt, infaas, arlo} {
		cfg, err := s.SimConfig(tr, gpus, 20*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sum := res.Summary
		inMS := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		fmt.Printf("%-8s %10.2f %10.2f %10.2f %10.2f %8.2f\n",
			s.Name, inMS(sum.Mean), inMS(sum.P50), inMS(sum.P98), inMS(sum.Max), 100*sum.SLOFraction)
	}
	fmt.Println("\n(Arlo should lead on both mean and tail; ST pays full padding on every request.)")
}
