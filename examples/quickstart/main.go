// Quickstart: build an Arlo system for BERT-Base, generate a minute of
// Twitter-like traffic, and compare polymorphing against uniform
// zero-padding on a fixed 10-GPU cluster.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"arlo/internal/baselines"
	"arlo/internal/core"
	"arlo/internal/sim"
	"arlo/internal/trace"
)

func main() {
	// 1. Build the system: calibrated BERT-Base latency model, 8 static
	//    runtimes (64..512), Runtime Scheduler + Request Scheduler with
	//    the paper's default parameters.
	a, err := core.NewSystem(core.WithModel("bert-base"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s, SLO %v, runtimes at max_lengths %v\n",
		a.Model.Arch().Name, a.SLO(), a.Profile.MaxLengths())

	// 2. Generate one minute of Twitter-Stable traffic at 1000 req/s.
	tr, err := trace.Generate(trace.Stable(7, 1000, time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	st := tr.Stats()
	fmt.Printf("trace: %d requests, length p50=%d p98=%d\n", st.Count, st.Median, st.P98)

	// 3. Ask the Runtime Scheduler how it would allocate 10 GPUs for this
	//    demand.
	alloc, err := a.Allocate(10, a.Demand(tr))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocation for 10 GPUs: %v (instances per runtime)\n", alloc.N)

	// 4. Simulate Arlo end to end.
	res, err := a.Simulate(tr, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Arlo: %v\n", res.Summary)

	// 5. Compare with the uniform zero-padding baseline (ST).
	stSys, err := baselines.ST(a.Model, a.SLO())
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := stSys.SimConfig(tr, 10, 20*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	stRes, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ST:   %v\n", stRes.Summary)
	fmt.Printf("polymorphing cuts mean latency by %.1f%%\n",
		100*(1-float64(res.Summary.Mean)/float64(stRes.Summary.Mean)))
}
