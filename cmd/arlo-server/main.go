// Command arlo-server runs the HTTP serving front end over an Arlo-
// scheduled emulated GPU cluster: POST /v1/infer with {"text": "..."}
// tokenizes the input, dispatches it by sequence length through the
// Request Scheduler, and returns the (emulated) classification with the
// measured latency.
//
// Usage:
//
//	arlo-server -addr :8080 -model bert-base -gpus 8
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"arlo/internal/allocator"
	"arlo/internal/cluster"
	"arlo/internal/controller"
	"arlo/internal/core"
	"arlo/internal/serve"
	"arlo/internal/tenant"
	"arlo/internal/tokenizer"
	"arlo/internal/wire"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		model      = flag.String("model", "bert-base", "model preset (bert-base, bert-large)")
		gpus       = flag.Int("gpus", 8, "emulated GPU count")
		policy     = flag.String("policy", "RS", "dispatch policy (RS, ILB, IG, LL, INFaaS)")
		ctrlOn     = flag.Bool("controller", false, "run the closed control loop (live replanning + autoscaling)")
		ctrlPeriod = flag.Duration("controller-period", 15*time.Second, "control-loop replanning period")
		ctrlScaler = flag.String("controller-scaler", "target", "autoscaler: target (p98 tracking), headroom (utilization), none")
		ctrlBudget = flag.Int("controller-budget", 0, "max instance replacements per replanning period (0 = default, negative = unlimited)")
		ctrlDryRun = flag.Bool("controller-dry-run", false, "control loop plans and reports but never mutates the cluster")
		reqTimeout = flag.Duration("request-timeout", 0, "server-side per-request timeout (0 disables)")
		pprofOn    = flag.Bool("pprof", false, "expose /debug/pprof/ runtime profiles")
		chaosOn    = flag.Bool("chaos", false, "expose /v1/chaos/ fault-injection endpoints (testing only)")
		batchSize  = flag.Int("batch-size", 1, "dynamic batching cap per instance (<=1 disables)")
		batchDelay = flag.Duration("batch-delay", 0, "batch collection window (0 = SLO/100, negative = greedy)")
		continuous = flag.Bool("continuous", false, "iteration-level (continuous) batching for generative workloads")
		meanOut    = flag.Float64("mean-out-tokens", 0, "expected output length hint for continuous capacity planning (0 = default 16)")
		wireAddr   = flag.String("wire-addr", "", "binary wire-protocol listen address (empty disables, e.g. :8081)")
		ingressOn  = flag.Bool("ingress", false, "submit through sharded ingress rings with grouped dispatch")
		ingressGrp = flag.Int("ingress-group", 0, "ingress drain group size (0 = default)")
		tenantsCfg = flag.String("tenants-config", "", "JSON tenant config file enabling multi-tenant admission and fair sharing")
		shardName  = flag.String("shard", "", "shard name for router registration (requires -wire-addr)")
	)
	flag.Parse()
	if *shardName != "" && *wireAddr == "" {
		log.Fatal("arlo-server: -shard requires -wire-addr (routers reach shards over the binary protocol)")
	}

	sysOpts := []core.Option{
		core.WithModel(*model),
		core.WithDispatchPolicy(*policy),
		core.WithBatching(*batchSize, *batchDelay),
	}
	if *continuous {
		sysOpts = append(sysOpts, core.WithContinuousBatching(*batchSize, *meanOut))
	}
	if *tenantsCfg != "" {
		data, err := os.ReadFile(*tenantsCfg)
		if err != nil {
			log.Fatalf("arlo-server: tenants config: %v", err)
		}
		cfgs, err := tenant.ParseConfig(data)
		if err != nil {
			log.Fatalf("arlo-server: tenants config: %v", err)
		}
		sysOpts = append(sysOpts, core.WithTenants(cfgs...))
	}
	a, err := core.NewSystem(sysOpts...)
	if err != nil {
		log.Fatalf("arlo-server: %v", err)
	}
	// Allocate for a Twitter-shaped demand mix until real traffic
	// statistics accumulate.
	q := make([]float64, len(a.Profile.Runtimes))
	for i := range q {
		q[i] = 100.0 / float64(i+1)
	}
	cl, err := a.NewCluster(*gpus, q)
	if err != nil {
		log.Fatalf("arlo-server: %v", err)
	}
	defer cl.Close()

	// The control loop is built before the server so its observability
	// recorder lands on the cluster first; serve.New then reuses it for
	// /metrics, and WithController exposes the loop at /v1/controller.
	var ctrl *controller.Controller
	if *ctrlOn {
		opts := controller.Options{
			Period:          *ctrlPeriod,
			MaxReplacements: *ctrlBudget,
			DryRun:          *ctrlDryRun,
		}
		switch *ctrlScaler {
		case "target":
			opts.Scaler, err = allocator.NewAutoScaler(a.SLO())
			if err != nil {
				log.Fatalf("arlo-server: %v", err)
			}
		case "headroom":
			opts.Scaler = allocator.NewHeadroomScaler()
		case "none":
		default:
			log.Fatalf("arlo-server: unknown -controller-scaler %q (want target, headroom or none)", *ctrlScaler)
		}
		ctrl, err = a.NewController(cl, opts)
		if err != nil {
			log.Fatalf("arlo-server: %v", err)
		}
	}

	srvOpts := []serve.Option{serve.WithMaxLength(a.Model.Arch().MaxLength)}
	if ctrl != nil {
		srvOpts = append(srvOpts, serve.WithController(ctrl))
	}
	if *reqTimeout > 0 {
		srvOpts = append(srvOpts, serve.WithRequestTimeout(*reqTimeout))
	}
	if *pprofOn {
		srvOpts = append(srvOpts, serve.WithPprof())
	}
	if *chaosOn {
		srvOpts = append(srvOpts, serve.WithChaos())
		fmt.Println("arlo-server: chaos endpoints enabled at /v1/chaos/{fail,slow,restore}")
	}
	if *ingressOn || *ingressGrp > 0 {
		srvOpts = append(srvOpts, serve.WithIngress(cluster.IngressConfig{MaxGroup: *ingressGrp}))
	}
	if *shardName != "" {
		srvOpts = append(srvOpts, serve.WithShardName(*shardName))
	}
	srv, err := serve.New(tokenizer.New(), cl, srvOpts...)
	if err != nil {
		log.Fatalf("arlo-server: %v", err)
	}
	defer srv.Close()
	if *ingressOn || *ingressGrp > 0 {
		fmt.Println("arlo-server: ring ingress on (grouped dispatch); watch arlo_ingress_wait_seconds on /metrics")
	}
	if *wireAddr != "" {
		wl, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			log.Fatalf("arlo-server: wire listener: %v", err)
		}
		go func() {
			if err := srv.ServeWire(wl); err != nil {
				log.Printf("arlo-server: wire listener: %v", err)
			}
		}()
		fmt.Printf("arlo-server: binary wire protocol on %s\n", *wireAddr)
		if *shardName != "" {
			fmt.Printf("arlo-server: serving as shard %q; load snapshots at /v1/load and wire kind %d\n",
				*shardName, wire.KindLoadRequest)
		}
	}
	if ctrl != nil {
		ctrl.Start()
		defer ctrl.Stop()
		mode := ""
		if *ctrlDryRun {
			mode = ", dry-run"
		}
		fmt.Printf("arlo-server: control loop active (period %v, scaler %s%s); status at /v1/controller\n",
			*ctrlPeriod, *ctrlScaler, mode)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		httpSrv.Close()
	}()
	fmt.Printf("arlo-server: %s on %s with %d emulated GPUs (%d runtimes, policy %s, SLO %v); metrics at /metrics\n",
		*model, *addr, *gpus, len(a.Profile.Runtimes), *policy, a.SLO())
	if *tenantsCfg != "" {
		fmt.Printf("arlo-server: multi-tenant mode on (%s); admin at /v1/tenants, watch arlo_admission_total on /metrics\n",
			*tenantsCfg)
	}
	if *continuous {
		fmt.Printf("arlo-server: continuous (iteration-level) batching on (slots %d); POST /v1/generate, watch arlo_ttft_seconds on /metrics\n",
			*batchSize)
	} else if *batchSize > 1 {
		fmt.Printf("arlo-server: dynamic batching on (cap %d, window %v); watch arlo_batch_size on /metrics\n",
			*batchSize, *batchDelay)
	}
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("arlo-server: %v", err)
	}
}
