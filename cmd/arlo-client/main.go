// Command arlo-client drives an arlo-server with a synthetic text
// workload and reports latency statistics.
//
// Usage:
//
//	arlo-client -url http://127.0.0.1:8080 -rate 100 -duration 10s
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"sync"
	"time"

	"arlo/internal/metrics"
	"arlo/internal/serve"
	"arlo/internal/trace"
)

// sampleWords feed the synthetic text generator; lengths are driven by the
// Twitter-calibrated distribution.
var sampleWords = strings.Fields(`the of and a to in is it you that was for
on are with as his they be at one have this from or had by word but what
some we can out other were all there when up use your how said each she
which do their time if will way about many then them write would like so
these her long make thing see him two has look more day could go come did
number sound no most people my over know water than call first who may down
side been now find`)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "arlo-server base URL")
		rate     = flag.Float64("rate", 50, "request rate (req/s)")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		seed     = flag.Int64("seed", 1, "workload seed")
		workers  = flag.Int("workers", 64, "maximum concurrent requests")
		timeout  = flag.Duration("timeout", 0, "per-attempt request timeout (0 disables)")
		retries  = flag.Int("retries", 0, "retries per request on transient failures")
		backoff  = flag.Duration("backoff", 50*time.Millisecond, "initial retry backoff (doubles per retry)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	lengths := trace.TwitterRecalibrated(*seed)
	client := &serve.Client{
		BaseURL:    *url,
		Timeout:    *timeout,
		MaxRetries: *retries,
		Backoff:    *backoff,
	}

	var (
		mu   sync.Mutex
		rec  metrics.Recorder
		errs int
		wg   sync.WaitGroup
	)
	sem := make(chan struct{}, *workers)
	interval := time.Duration(float64(time.Second) / *rate)
	start := time.Now()
	n := 0
	for time.Since(start) < *duration {
		text := makeText(rng, lengths.SampleLength(rng, time.Since(start)))
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			resp, err := client.Infer(text)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs++
				return
			}
			rec.Record(time.Duration(resp.LatencyMS * float64(time.Millisecond)))
		}()
		n++
		next := start.Add(time.Duration(n) * interval)
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
	}
	wg.Wait()

	if rec.Count() == 0 {
		log.Fatalf("arlo-client: no successful requests (%d errors)", errs)
	}
	fmt.Printf("sent %d requests, %d errors\n", n, errs)
	fmt.Println(rec.Summarize(0))
	stats, err := client.Stats()
	if err == nil {
		fmt.Printf("server: served=%d rejected=%d instances=%d\n", stats.Served, stats.Rejected, stats.Instances)
	}
}

// makeText produces text that tokenizes to roughly targetTokens.
func makeText(rng *rand.Rand, targetTokens int) string {
	words := targetTokens - 2 // CLS/SEP overhead
	if words < 1 {
		words = 1
	}
	var b strings.Builder
	for i := 0; i < words; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(sampleWords[rng.Intn(len(sampleWords))])
	}
	return b.String()
}
