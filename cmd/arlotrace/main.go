// Command arlotrace generates and inspects synthetic request traces.
//
// Usage:
//
//	arlotrace -kind stable -rate 1000 -duration 1m -seed 7
//	arlotrace -kind bursty -rate 8000 -duration 10m -stats
//	arlotrace -kind raw -rate 300 -duration 10m -cdf
//
// Kinds: "stable" (Poisson, recalibrated lengths), "bursty" (MMPP,
// recalibrated lengths), "raw" (Poisson, raw Twitter-calibrated lengths,
// max 125). Without -stats or -cdf the trace is written to stdout as CSV
// (id,at_ms,length).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"arlo/internal/trace"
)

func main() {
	var (
		kind     = flag.String("kind", "stable", "trace kind: stable, bursty, raw")
		rate     = flag.Float64("rate", 1000, "average arrival rate (req/s)")
		duration = flag.Duration("duration", time.Minute, "trace window")
		seed     = flag.Int64("seed", 42, "generation seed")
		stats    = flag.Bool("stats", false, "print summary statistics only")
		cdf      = flag.Bool("cdf", false, "print the length CDF only")
	)
	flag.Parse()

	var cfg trace.Config
	switch *kind {
	case "stable":
		cfg = trace.Stable(*seed, *rate, *duration)
	case "bursty":
		cfg = trace.Bursty(*seed, *rate, *duration)
	case "raw":
		cfg = trace.Config{
			Seed:     *seed,
			Duration: *duration,
			Arrivals: trace.Poisson{Rate: *rate},
			Lengths:  trace.TwitterLengths(*seed),
		}
	default:
		fmt.Fprintf(os.Stderr, "arlotrace: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arlotrace: %v\n", err)
		os.Exit(1)
	}

	switch {
	case *stats:
		st := tr.Stats()
		fmt.Printf("requests: %d\nmean rate: %.1f req/s\nlength p50: %d\nlength p98: %d\nlength max: %d\nlength mean: %.1f\n",
			st.Count, tr.MeanRate(), st.Median, st.P98, st.Max, st.Mean)
	case *cdf:
		for _, pt := range tr.LengthCDF() {
			fmt.Printf("%d,%.6f\n", pt.Length, pt.F)
		}
	default:
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		fmt.Fprintln(w, "id,at_ms,length")
		for _, r := range tr.Requests {
			fmt.Fprintf(w, "%d,%.3f,%d\n", r.ID, float64(r.At)/float64(time.Millisecond), r.Length)
		}
	}
}
