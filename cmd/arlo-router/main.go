// Command arlo-router runs the stateless routing tier in front of N
// arlo-server shards: it speaks the same JSON and binary protocols a
// single server does, picks a shard per request with length-aware
// least-loaded scoring against asynchronously refreshed load snapshots,
// and re-routes around dead shards under a bounded hop budget.
//
// Usage:
//
//	arlo-server -addr :8081 -wire-addr :9081 -shard a &
//	arlo-server -addr :8082 -wire-addr :9082 -shard b &
//	arlo-router -addr :8080 -shards a=localhost:9081,b=localhost:9082
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"arlo/internal/router"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		wireAddr = flag.String("wire-addr", "", "binary wire-protocol listen address (empty disables)")
		shards   = flag.String("shards", "", "comma-separated shard wire addresses, each name=host:port (name optional)")
		policy   = flag.String("policy", "length-aware", "routing policy (length-aware, round-robin, least-loaded)")
		refresh  = flag.Duration("snapshot-refresh", 100*time.Millisecond, "load snapshot refresh interval (0 = fetch synchronously per decision)")
		hops     = flag.Int("hop-budget", 0, "max reroute hops per request (0 = failover default)")
		maxLen   = flag.Int("max-len", 512, "tokenizer cap; keep equal to the shards' model max length")
		seed     = flag.Int64("seed", 0, "power-of-two-choices sampler seed (0 = 1)")
	)
	flag.Parse()

	cfg := router.Config{
		SnapshotRefreshInterval: *refresh,
		HopBudget:               *hops,
		MaxLength:               *maxLen,
		Seed:                    *seed,
	}
	var err error
	if cfg.Policy, err = router.ParsePolicy(*policy); err != nil {
		log.Fatalf("arlo-router: %v", err)
	}
	if *shards == "" {
		log.Fatal("arlo-router: -shards is required (e.g. -shards a=localhost:9081,b=localhost:9082)")
	}
	for _, spec := range strings.Split(*shards, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		sc := router.ShardConfig{Addr: spec}
		if name, rest, ok := strings.Cut(spec, "="); ok {
			sc = router.ShardConfig{Name: name, Addr: rest}
		}
		cfg.Shards = append(cfg.Shards, sc)
	}
	rt, err := router.New(cfg)
	if err != nil {
		log.Fatalf("arlo-router: %v", err)
	}
	defer rt.Close()

	if *wireAddr != "" {
		wl, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			log.Fatalf("arlo-router: wire listener: %v", err)
		}
		go func() {
			if err := rt.ServeWire(wl); err != nil {
				log.Printf("arlo-router: wire listener: %v", err)
			}
		}()
		fmt.Printf("arlo-router: binary wire protocol on %s\n", *wireAddr)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		httpSrv.Close()
	}()
	fmt.Printf("arlo-router: fronting %d shards on %s (policy %s, snapshot refresh %v); health at /healthz, metrics at /metrics\n",
		len(cfg.Shards), *addr, cfg.Policy, *refresh)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("arlo-router: %v", err)
	}
}
