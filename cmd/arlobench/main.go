// Command arlobench regenerates the paper's tables and figures.
//
// Usage:
//
//	arlobench -list
//	arlobench -exp fig6 [-seed 42] [-full]
//	arlobench -exp all
//
// Quick mode (default) scales trace durations down so the whole suite
// finishes in a few minutes; -full runs paper-scale workloads. All
// workloads are deterministic for a given seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"arlo/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id (fig1..fig12, table2..table4, calib, ablation-rs) or \"all\"")
		seed       = flag.Int64("seed", 42, "workload seed")
		full       = flag.Bool("full", false, "run paper-scale durations and rates")
		list       = flag.Bool("list", false, "list available experiments")
		batchSize  = flag.Int("batch-size", 0, "dynamic batching cap for batched-cluster experiments (0 = experiment default)")
		batchDelay = flag.Duration("batch-delay", 0, "batch collection window (0 = SLO-aware default, negative = greedy)")
		routerTier = flag.Bool("router", false, "drive socket-level harnesses through a router fronting 3 shards instead of a single server")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, s := range experiments.All() {
			fmt.Printf("  %-12s %s\n", s.ID, s.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opt := experiments.Options{Seed: *seed, Full: *full, BatchSize: *batchSize, BatchDelay: *batchDelay, Router: *routerTier}
	var specs []experiments.Spec
	if *exp == "all" {
		specs = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			s, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "arlobench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			specs = append(specs, s)
		}
	}
	for _, s := range specs {
		fmt.Printf("=== %s: %s ===\n", s.ID, s.Title)
		start := time.Now()
		if err := s.Run(os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "arlobench: %s failed: %v\n", s.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
