module arlo

go 1.22
